"""The circuit-simplification engine (Section III.A of the paper).

Injecting a stuck-at fault assigns a static 0/1 to a line; the engine
then maximally exploits that constant:

* **Forward simplification** implies the constant toward the primary
  outputs, rewriting each gate it reaches according to Table I
  (:mod:`repro.simplify.tables`): controlling constants fold the gate
  to a constant output and continue; non-controlling constants just
  disconnect the input (XOR/XNOR additionally flip polarity).

* **Backward simplification** deletes logic that lost its last
  consumer: starting from a released fanin, gates are removed and their
  own fanins released recursively until a still-used stem, a primary
  output, or a primary input stops the walk.

Both procedures run on an :class:`Overlay` -- a sparse set of edits
(dead gates, dropped pins, retypes, constant signals) over an untouched
base circuit.  That makes *previewing* the area reduction of a
candidate fault cheap (no netlist copy), which the greedy heuristic of
Section IV exploits heavily; committing a selection is a
:meth:`Overlay.materialize` call that builds the simplified circuit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..circuit import Circuit, GateType
from ..circuit.netlist import CircuitError, Gate, gate_area
from ..faults.model import StuckAtFault
from .tables import identity_value, rule_for, shrink_type

__all__ = ["Overlay", "simplify_with_fault", "simplify_with_faults", "preview_area_reduction"]

_CONST_TYPES = (GateType.CONST0, GateType.CONST1)


class Overlay:
    """Sparse simplification state over a base circuit.

    One overlay accepts any number of fault injections via
    :meth:`apply`; edits accumulate.  The base circuit is never
    modified.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._fanout = circuit.fanout_map()
        self._po_count: Dict[str, int] = {}
        for o in circuit.outputs:
            self._po_count[o] = self._po_count.get(o, 0) + 1
        self.const_of: Dict[str, int] = {}
        self.dead: Set[str] = set()
        self.dropped: Dict[str, Set[int]] = {}
        self.retype: Dict[str, GateType] = {}
        self._consumer_delta: Dict[str, int] = {}
        self._queue: Deque[Tuple[str, int, int]] = deque()  # (gate, pin, const)
        # Fault-site markings: a stuck line holds its stuck value no
        # matter what is implied onto it, so propagation consults these.
        self._stem_mark: Dict[str, int] = {}
        self._pin_mark: Dict[Tuple[str, int], int] = {}
        self._dropped_value: Dict[Tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def gtype_of(self, name: str) -> GateType:
        """Current (possibly rewritten) type of a gate."""
        return self.retype.get(name, self.circuit.gates[name].gtype)

    def consumers(self, signal: str) -> int:
        """Current consumer count (gate pins + PO references)."""
        base = len(self._fanout.get(signal, ())) + self._po_count.get(signal, 0)
        return base + self._consumer_delta.get(signal, 0)

    def live_pins(self, name: str) -> List[Tuple[int, str]]:
        """Remaining (pin, source) connections of a live gate."""
        drops = self.dropped.get(name, ())
        return [
            (pin, src)
            for pin, src in enumerate(self.circuit.gates[name].inputs)
            if pin not in drops
        ]

    def is_dead(self, name: str) -> bool:
        return name in self.dead

    # ------------------------------------------------------------------
    # fault application
    # ------------------------------------------------------------------
    def apply(self, fault: StuckAtFault) -> None:
        """Inject one stuck-at fault and simplify to fixpoint."""
        self.apply_all((fault,))

    def apply_all(self, faults: Sequence[StuckAtFault]) -> None:
        """Inject a set of stuck-at faults simultaneously.

        Multiple-fault semantics: every faulty line holds its own stuck
        value.  A branch fault therefore overrides the (possibly also
        stuck) stem value on its one pin, and a stem fault on a gate
        output overrides whatever constant the gate's rewritten logic
        would produce.  Contradictory faults (both polarities on one
        line) are rejected.
        """
        stems: List[StuckAtFault] = []
        branches: List[StuckAtFault] = []
        for f in faults:
            line = f.line
            if not self.circuit.has_signal(line.signal):
                raise CircuitError(f"fault site {line} not in circuit")
            if line.is_branch:
                gate = self.circuit.gates.get(line.gate)
                if gate is None:
                    raise CircuitError(f"fault {f}: gate {line.gate!r} not in circuit")
                if line.pin >= len(gate.inputs) or gate.inputs[line.pin] != line.signal:
                    raise CircuitError(f"fault {f}: pin does not match netlist")
                key = (line.gate, line.pin)
                if self._pin_mark.get(key, f.value) != f.value:
                    raise CircuitError(f"contradictory faults on branch {line}")
                self._pin_mark[key] = f.value
                branches.append(f)
            else:
                if self._stem_mark.get(line.signal, f.value) != f.value:
                    raise CircuitError(f"contradictory faults on stem {line.signal!r}")
                self._stem_mark[line.signal] = f.value
                stems.append(f)

        # Branch sites first: their pins must be pinned to the branch
        # value before any stem constant can flow across them.
        for f in branches:
            gate, pin = f.line.gate, f.line.pin
            if gate in self.dead:
                continue  # output unused: the branch cannot matter
            if self.gtype_of(gate) in _CONST_TYPES:
                if gate in self._stem_mark:
                    continue  # masked by a stem fault on the gate output
                raise CircuitError(
                    f"fault {f} interacts with an earlier simplification; "
                    "inject interacting faults in a single apply_all() call"
                )
            if pin in self.dropped.get(gate, ()):
                if self._dropped_value.get((gate, pin)) == f.value:
                    continue  # the same constant is already in effect
                raise CircuitError(
                    f"fault {f} interacts with an earlier simplification; "
                    "inject interacting faults in a single apply_all() call"
                )
            self._queue.append((gate, pin, f.value))
        for f in stems:
            if self.circuit.is_input(f.line.signal):
                self._propagate_const(f.line.signal, f.value)
            else:
                self._fold_gate_to_const(f.line.signal, f.value)
        self._drain()

    def _drain(self) -> None:
        while self._queue:
            gate, pin, value = self._queue.popleft()
            self._pin_const(gate, pin, value)

    # ------------------------------------------------------------------
    # forward simplification (Table I)
    # ------------------------------------------------------------------
    def _pin_const(self, name: str, pin: int, value: int) -> None:
        if name in self.dead:
            return
        gt = self.gtype_of(name)
        if gt in _CONST_TYPES:
            return
        if pin in self.dropped.get(name, ()):
            return
        # A branch fault pins this connection to its own stuck value,
        # overriding any constant implied across it.
        mark = self._pin_mark.get((name, pin))
        if mark is not None:
            value = mark
        rule = rule_for(gt, value)
        if rule.action == "FOLD":
            # Remove gate, drive the constant, backward-simplify the
            # other inputs.
            self._fold_gate_to_const(name, rule.output)
            return
        # DROP: disconnect this input, stop forward implication here.
        src = self.circuit.gates[name].inputs[pin]
        self.dropped.setdefault(name, set()).add(pin)
        self._dropped_value[(name, pin)] = value
        self._release(src)
        if rule.flip:
            self.retype[name] = (
                GateType.XNOR if gt is GateType.XOR else GateType.XOR
            )
            gt = self.retype[name]
        remaining = self.live_pins(name)
        if not remaining:
            # Every input was a dropped constant: the gate output is the
            # (polarity-adjusted) identity value.
            self._fold_gate_to_const(name, identity_value(gt))
        elif len(remaining) == 1 and gt not in (GateType.NOT, GateType.BUF):
            self.retype[name] = shrink_type(gt)

    def _fold_gate_to_const(self, name: str, value: int) -> None:
        """Replace a gate with a constant driver and release its fanin."""
        if name in self.dead:
            return
        # A stem fault pins the gate output to its stuck value, no
        # matter what the rewritten gate would compute.
        mark = self._stem_mark.get(name)
        if mark is not None:
            value = mark
        gt = self.gtype_of(name)
        if gt in _CONST_TYPES:
            existing = 1 if gt is GateType.CONST1 else 0
            if existing != value:
                raise CircuitError(
                    f"conflicting constants on {name!r}: inject interacting "
                    "faults in a single apply_all() call"
                )
            return
        for pin, src in self.live_pins(name):
            self.dropped.setdefault(name, set()).add(pin)
            self._release(src)
        self.retype[name] = GateType.CONST1 if value else GateType.CONST0
        self._propagate_const(name, value)

    def _propagate_const(self, signal: str, value: int) -> None:
        """Queue Table I processing at every live consumer of a constant."""
        if signal in self.const_of:
            if self.const_of[signal] != value:
                raise CircuitError(
                    f"conflicting constants on {signal!r}: inject interacting "
                    "faults in a single apply_all() call"
                )
            return
        self.const_of[signal] = value
        for gate, pin in self._fanout.get(signal, ()):
            if gate in self.dead:
                continue
            if pin in self.dropped.get(gate, ()):
                continue
            self._queue.append((gate, pin, value))

    # ------------------------------------------------------------------
    # backward simplification (dead-logic removal)
    # ------------------------------------------------------------------
    def _release(self, signal: str) -> None:
        """One consumer of ``signal`` went away; delete newly dead logic.

        Iterative backward walk: gates are removed and their fanins
        released until a still-used stem, a primary output, or a primary
        input stops the traversal.
        """
        stack = [signal]
        while stack:
            s = stack.pop()
            self._consumer_delta[s] = self._consumer_delta.get(s, 0) - 1
            if self.consumers(s) > 0:
                continue  # still a stem with other consumers
            if self._po_count.get(s):
                continue
            if self.circuit.is_input(s):
                continue  # primary inputs are never removed
            if s in self.dead:
                continue
            self.dead.add(s)
            for pin, src in self.live_pins(s):
                self.dropped.setdefault(s, set()).add(pin)
                stack.append(src)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def area_delta(self) -> int:
        """Total area removed so far (positive = smaller circuit)."""
        delta = 0
        touched = set(self.dead) | set(self.retype) | set(self.dropped)
        for name in touched:
            gate = self.circuit.gates.get(name)
            if gate is None:
                continue  # primary input bookkeeping
            before = gate_area(gate)
            delta += before - self._current_area(name, gate)
        return delta

    def _current_area(self, name: str, gate: Gate) -> int:
        if name in self.dead:
            return 0
        gt = self.gtype_of(name)
        if gt in _CONST_TYPES or gt is GateType.BUF:
            return 0
        if gt is GateType.NOT:
            return 1
        n = len(gate.inputs) - len(self.dropped.get(name, ()))
        return max(1, n)

    def materialize(self, name: Optional[str] = None) -> Circuit:
        """Build the simplified circuit described by this overlay."""
        out = Circuit(name or f"{self.circuit.name}_simplified")
        for pi in self.circuit.inputs:
            out.add_input(pi)
        const_alias: Dict[int, str] = {}

        for gname in self.circuit.topological_order():
            if gname in self.dead:
                continue
            gate = self.circuit.gates[gname]
            gt = self.gtype_of(gname)
            if gt in _CONST_TYPES:
                out.add_gate(gname, gt, ())
                continue
            pins = [src for _pin, src in self.live_pins(gname)]
            out.add_gate(gname, gt, pins)

        for o in self.circuit.outputs:
            weight = self.circuit.output_weights.get(o, 1)
            is_data = o in set(self.circuit.data_outputs)
            pi_stuck = self.circuit.is_input(o) and o in self.const_of
            if out.has_signal(o) and not pi_stuck:
                out.add_output(o, weight=weight, is_data=is_data)
                continue
            # A PO whose driving PI became constant (PI stem fault) or,
            # defensively, any constant PO without a surviving driver:
            # alias it to a constant gate so the name is preserved.
            value = self.const_of.get(o)
            if value is None:
                raise CircuitError(f"output {o!r} lost its driver without a constant")
            if value not in const_alias:
                cname = f"__const{value}"
                k = 0
                while out.has_signal(cname):
                    cname = f"__const{value}_{k}"
                    k += 1
                out.add_gate(cname, GateType.CONST1 if value else GateType.CONST0, ())
                const_alias[value] = cname
            alias = f"{o}__tied"
            k = 0
            while out.has_signal(alias):
                alias = f"{o}__tied_{k}"
                k += 1
            out.add_gate(alias, GateType.BUF, (const_alias[value],))
            out.add_output(alias, weight=weight, is_data=is_data)
        out.validate()
        return out


# ----------------------------------------------------------------------
# module-level conveniences
# ----------------------------------------------------------------------
def simplify_with_fault(
    circuit: Circuit, fault: StuckAtFault, name: Optional[str] = None
) -> Circuit:
    """Simplify ``circuit`` by injecting one stuck-at fault."""
    return simplify_with_faults(circuit, (fault,), name=name)


def simplify_with_faults(
    circuit: Circuit, faults: Iterable[StuckAtFault], name: Optional[str] = None
) -> Circuit:
    """Simplify ``circuit`` by injecting a set of stuck-at faults.

    The result implements exactly the multiple-faulty function (see
    :func:`repro.faults.multiple.inject_faults` for the behavioural
    reference the test-suite checks against) with all Table I rewrites
    and dead-logic removal applied.
    """
    overlay = Overlay(circuit)
    overlay.apply_all(tuple(faults))
    return overlay.materialize(name)


def preview_area_reduction(circuit: Circuit, fault: StuckAtFault) -> int:
    """Area saved by injecting ``fault``, without building the netlist."""
    overlay = Overlay(circuit)
    overlay.apply(fault)
    return overlay.area_delta()
