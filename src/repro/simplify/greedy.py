"""The greedy area-reduction heuristic (Fig. 6 of the paper).

``circuit_simplify`` iterates: evaluate a figure of merit (FOM) for the
candidate single stuck-at faults of the *current* simplified circuit,
inject the best one, re-measure ER/ES/RS of the cumulative
simplification against the *original* circuit, and repeat until the RS
threshold would be violated.  Exactly as in Section IV:

* ER is re-estimated for the whole accumulated change by differential
  parallel fault simulation (never composed from single-fault ERs);
* ES is re-estimated against the original circuit -- by observed
  deviation for candidate ranking, and by the conservative threshold
  ATPG for the commit decision (``es_mode="hybrid"``, the default);
* both paper FOMs are available: plain area reduction (``"area"``) and
  area reduction per unit of added RS (``"area_per_rs"``); the Table II
  experiment reports the better of the two.

Engineering notes (documented deviations, see DESIGN.md): candidate
ranking uses the simulated ES (the ATPG would be run p times per
iteration otherwise), and each iteration evaluates the
``candidate_limit`` most promising candidates, pre-ranked by a cheap
structural proxy (previewed area gain over the reachable-output weight
bound).  Set ``candidate_limit=None`` for the paper's full O(kp) scan.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..circuit import Circuit
from ..circuit.structure import datapath_signals
from ..faults.model import StuckAtFault, datapath_faults, enumerate_faults
from ..metrics.errors import ErrorMetrics, rs_max
from ..metrics.estimate import MetricsEstimator
from ..obs.core import Instrumentation, get_active
from ..obs.journal import JOURNAL_VERSION, RunJournal, truncate_torn_tail
from .engine import Overlay, preview_area_reduction

__all__ = ["GreedyConfig", "IterationRecord", "GreedyResult", "circuit_simplify"]


@dataclass
class GreedyConfig:
    """Tuning knobs for :func:`circuit_simplify`.

    Attributes
    ----------
    fom:
        ``"area"`` or ``"area_per_rs"`` (both appear in the paper).
    num_vectors:
        Vector-batch size for ER estimation (paper: 10,000).
    seed:
        RNG seed for the vector batch.
    es_mode:
        ``"hybrid"`` (rank by simulated ES, commit with ATPG ES --
        default), ``"atpg"`` (ATPG for commits, identical to hybrid in
        effect), or ``"simulated"`` (no ATPG at all; fastest,
        optimistic ES).
    candidate_limit:
        Number of candidates fully evaluated per iteration after proxy
        pre-ranking; ``None`` evaluates all (the paper's full scan).
    use_batch_ranking:
        Score the shortlist with the cone-restricted
        :class:`~repro.simulation.batchfaultsim.BatchFaultSimulator`
        (one baseline per batch, per-fault fanout-cone replay, early
        fault dropping against the RS threshold).  Bit-identical to the
        per-fault full simulation it replaces -- the golden equivalence
        test pins that -- but much faster; ``False`` keeps the seed
        path (full ``LogicSimulator`` walk per candidate).  Commit
        decisions always use the full differential simulation either
        way, because ER does not compose across interacting faults.
    datapath_only:
        Restrict candidates to datapath lines (Table II methodology).
    include_branches:
        Include fanout-branch fault sites.
    max_iterations:
        Hard iteration cap.
    atpg_node_limit:
        Search budget for each ES-ATPG threshold query.
    exhaustive:
        Use an exhaustive vector batch (small circuits; makes ER exact).
    pow2_es:
        Round ES up to the next power of two in commit decisions,
        reproducing the paper's conservative sweep resolution.
    redundancy_prepass:
        Run a classical redundancy-removal pass over the candidate
        faults before RS-budgeted selection.  Redundant faults have
        zero ER and ES (the paper: "a redundant fault is simply a
        candidate that has zero ES and ER values"), so injecting them
        is free; identifying them with PODEM up front is much cheaper
        than waiting for the greedy ranking to stumble on them.
    prepass_backtrack_limit:
        PODEM backtrack budget per fault during the prepass (aborted
        proofs count as not redundant).
    engine:
        Simulation engine: ``"compiled"`` (whole-netlist compiled
        kernel, the default) or ``"python"`` (per-gate
        :class:`~repro.simulation.logicsim.LogicSimulator` walk).
        ``None`` / ``"auto"`` consult the ``REPRO_ENGINE`` environment
        variable.  The resolved concrete value is what gets journaled,
        so a checkpoint resume adopts the original run's engine no
        matter the resuming process's environment.  Both engines are
        bit-identical (pinned by the golden equivalence suite); the
        flag exists for cross-checking and as an escape hatch.
    """

    fom: str = "area_per_rs"
    num_vectors: int = 10_000
    seed: int = 0
    es_mode: str = "hybrid"
    candidate_limit: Optional[int] = 200
    use_batch_ranking: bool = True
    datapath_only: bool = True
    include_branches: bool = True
    max_iterations: int = 10_000
    atpg_node_limit: int = 4_000
    exhaustive: bool = False
    pow2_es: bool = False
    redundancy_prepass: bool = False
    prepass_backtrack_limit: int = 500
    engine: Optional[str] = None


@dataclass
class IterationRecord:
    """One committed simplification step.

    Beyond the identity of the step (fault, area trajectory, metrics),
    the record carries the step's telemetry: ``phase`` distinguishes
    redundancy-prepass injections from greedy commits, ``phase_times``
    holds the wall seconds of the step's internal phases (candidate
    enumeration / ranking / commit for greedy steps), and ``counters``
    the instrumentation counter deltas attributable to the step (cache
    hits, vectors simulated, ATPG effort; empty when instrumentation is
    disabled).  These feed the run journal one-for-one.
    """

    index: int
    fault: StuckAtFault
    area_before: int
    area_after: int
    metrics: ErrorMetrics
    fom_value: float
    candidates_evaluated: int
    phase: str = "greedy"
    phase_times: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def area_delta(self) -> int:
        return self.area_before - self.area_after


@dataclass
class GreedyResult:
    """Outcome of one greedy simplification run."""

    original: Circuit
    simplified: Circuit
    rs_threshold: float
    config: GreedyConfig
    faults: List[StuckAtFault] = field(default_factory=list)
    iterations: List[IterationRecord] = field(default_factory=list)
    final_metrics: Optional[ErrorMetrics] = None

    @property
    def area_reduction(self) -> int:
        return self.original.area() - self.simplified.area()

    @property
    def area_reduction_pct(self) -> float:
        base = self.original.area()
        return 100.0 * self.area_reduction / base if base else 0.0

    def area_reduction_at(self, rs_threshold: float) -> float:
        """Percent area reduction of the deepest trajectory prefix whose
        cumulative RS stays within ``rs_threshold``.

        Useful for reading several thresholds off one run; dedicated
        runs per threshold can do slightly better (see module notes).
        """
        base = self.original.area()
        best = 0
        for rec in self.iterations:
            if rec.metrics.rs <= rs_threshold:
                best = max(best, self.original.area() - rec.area_after)
        return 100.0 * best / base if base else 0.0


class _JournalTee:
    """Fan one event stream out to several sinks (run journal,
    checkpoint journal, live progress reporter -- anything with the
    ``emit(event)`` surface)."""

    __slots__ = ("journals",)

    def __init__(self, journals: List) -> None:
        self.journals = journals

    def emit(self, event: Dict) -> None:
        for j in self.journals:
            j.emit(event)


def circuit_simplify(
    circuit: Circuit,
    rs_threshold: Optional[float] = None,
    rs_pct_threshold: Optional[float] = None,
    config: Optional[GreedyConfig] = None,
    journal: Optional[Union[str, os.PathLike, RunJournal]] = None,
    obs: Optional[Instrumentation] = None,
    workers: Optional[int] = None,
    checkpoint: Optional[Union[str, os.PathLike]] = None,
    progress=None,
    telemetry_interval: Optional[float] = None,
    trace_id: Optional[str] = None,
) -> GreedyResult:
    """Greedy maximal area reduction within an RS budget (paper Fig. 6).

    Exactly one of ``rs_threshold`` (absolute RS) or ``rs_pct_threshold``
    (percent of the circuit's maximum RS, as in Table II) must be given.

    ``journal`` (a path or an open :class:`~repro.obs.journal.RunJournal`)
    streams one JSONL event per committed step plus a run header and a
    final summary; an interrupted run leaves a readable prefix.
    ``obs`` overrides the active instrumentation registry; when a
    journal is requested and instrumentation is off, a private registry
    is switched on so the journal always carries real phase timings.

    ``workers`` shards phase-2 candidate scoring across a process pool
    (:class:`~repro.parallel.pool.ScoringPool`); ``None`` consults the
    ``REPRO_WORKERS`` environment variable, ``0`` means one per CPU.
    Parallel runs select the same fault sequence as serial runs.

    ``progress`` attaches a live sink (usually a
    :class:`~repro.obs.progress.ProgressReporter`) that receives the
    same event stream as the journals -- the heartbeat can never
    disagree with the journal.  The caller owns its lifetime (it is
    not closed here, so one reporter can span the ``fom="best"``
    policy's two constituent runs).

    ``telemetry_interval`` switches on the background resource sampler
    (:class:`~repro.obs.telemetry.TelemetryMonitor`): RSS/CPU/throughput
    samples every that-many seconds, journaled as v4 ``telemetry``
    events (coordinator lane plus one lane per scoring-worker pid) and
    mirrored into gauges and -- when tracing -- Chrome-trace counter
    tracks.  ``None`` (the default) runs no sampler thread.

    ``trace_id`` is an opaque correlation id stamped into the journal
    header (``run_start``/``resume``) and every telemetry event; the
    job server uses it to link a client submission to this run's
    artifacts.  ``None`` (the default) leaves the events untouched.

    ``checkpoint`` names a journal file that doubles as a durable run
    checkpoint: if the file already holds a run prefix (e.g. from a
    killed process), the committed faults are replayed through the
    Overlay engine and the run *continues* from where it stopped,
    appending to the same file; otherwise a fresh checkpoint is
    started.  A checkpoint whose run already completed reconstructs the
    finished result without re-running.  See
    :mod:`repro.parallel.checkpoint`.
    """
    from ..parallel.pool import resolve_workers
    from ..simulation.compiled import resolve_engine

    cfg = config or GreedyConfig()
    # Resolve the engine to a concrete value up front: the journaled
    # config must name the engine actually used (a resume adopts it
    # regardless of the resuming process's REPRO_ENGINE), and the
    # config-match check below compares resolved against resolved.
    cfg = replace(cfg, engine=resolve_engine(cfg.engine))
    if (rs_threshold is None) == (rs_pct_threshold is None):
        raise ValueError("give exactly one of rs_threshold / rs_pct_threshold")
    maximum = rs_max(circuit)
    threshold = (
        float(rs_threshold)
        if rs_threshold is not None
        else float(rs_pct_threshold) * maximum / 100.0
    )
    num_workers = resolve_workers(workers)

    # ------------------------------------------------------------------
    # checkpoint: load an existing prefix and replay it
    # ------------------------------------------------------------------
    replay = None
    state = None
    checkpoint_path: Optional[str] = None
    if checkpoint is not None:
        from ..parallel.checkpoint import (
            greedy_config_from,
            maybe_load_checkpoint,
            replay_checkpoint,
        )

        checkpoint_path = os.fspath(checkpoint)
        state = maybe_load_checkpoint(checkpoint_path)
        if state is not None:
            if config is None:
                cfg = greedy_config_from(state.config)
                # Checkpoints written before the engine flag existed
                # journal no engine: resolve the default for them.
                cfg = replace(cfg, engine=resolve_engine(cfg.engine))
            else:
                _check_config_matches(cfg, state)
            state.validate_threshold(threshold)
            threshold = state.rs_threshold  # bit-exact continuation
            replay = replay_checkpoint(circuit, state, maximum)

    if cfg.fom not in ("area", "area_per_rs"):
        raise ValueError(f"unknown FOM {cfg.fom!r}")

    obs = obs if obs is not None else get_active()

    if state is not None and state.complete:
        # The journaled run already finished: reconstruct its result.
        obs.incr("checkpoint.already_complete")
        return _rebuild_complete_result(circuit, cfg, state, replay, maximum)

    # ------------------------------------------------------------------
    # journal sinks: optional user journal + optional checkpoint journal
    # ------------------------------------------------------------------
    sinks: List[RunJournal] = []
    own_journals: List[RunJournal] = []
    if journal is not None:
        same_file = (
            not isinstance(journal, RunJournal)
            and checkpoint_path is not None
            and os.path.abspath(os.fspath(journal)) == os.path.abspath(checkpoint_path)
        )
        if not same_file:
            if isinstance(journal, RunJournal):
                sinks.append(journal)
            else:
                j = RunJournal(journal)
                sinks.append(j)
                own_journals.append(j)
    if checkpoint_path is not None:
        if replay is not None:
            truncate_torn_tail(checkpoint_path)
        cj = RunJournal(checkpoint_path, append=replay is not None)
        sinks.append(cj)
        own_journals.append(cj)
    all_sinks: List = list(sinks)
    if progress is not None:
        all_sinks.append(progress)
    tee: Optional[_JournalTee] = _JournalTee(all_sinks) if all_sinks else None
    # A journal or a telemetry monitor needs real timings/counters to
    # record: switch a private registry on when instrumentation is off.
    if (tee is not None or telemetry_interval is not None) and not obs.enabled:
        obs = Instrumentation()

    estimator = MetricsEstimator(
        circuit,
        num_vectors=cfg.num_vectors,
        seed=cfg.seed,
        exhaustive=cfg.exhaustive,
        atpg_node_limit=cfg.atpg_node_limit,
        obs=obs,
        engine=cfg.engine,
    )
    if estimator.engine != cfg.engine:
        # Compile fallback: record the engine actually in effect so the
        # journal (and any resume) reflects reality.
        cfg = replace(cfg, engine=estimator.engine)
    result = GreedyResult(
        original=circuit,
        simplified=circuit.copy(),
        rs_threshold=threshold,
        config=cfg,
    )

    prev = _MetricsCursor()
    start_iteration = 0
    current_rs = 0.0
    reference: Optional[Circuit] = None
    banned: Set[Tuple] = set()
    skip_prepass = False
    if replay is not None:
        result.simplified = replay.current
        result.iterations = list(replay.iterations)
        result.faults = list(replay.faults)
        result.final_metrics = replay.final_metrics
        start_iteration = replay.start_iteration
        current_rs = replay.current_rs
        reference = replay.reference
        banned = set(replay.banned)
        skip_prepass = True
        prev.er, prev.es, prev.rs = replay.prev_metrics
        obs.incr("checkpoint.resumes")
        obs.incr("checkpoint.replayed_iterations", len(replay.iterations))

    # The monitor attaches to the registry *before* the pool is built:
    # the pool's executor reads ``obs.telemetry`` to decide whether
    # workers sample RSS/CPU per shard.
    monitor = None
    if telemetry_interval is not None:
        from ..obs.telemetry import TelemetryMonitor

        monitor = TelemetryMonitor(
            obs, sink=tee, interval_s=telemetry_interval, trace_id=trace_id
        )
        obs.telemetry = monitor

    pool = None
    if num_workers > 1 and cfg.use_batch_ranking:
        from ..parallel.pool import ScoringPool

        pool = ScoringPool(estimator, num_workers, obs=obs)

    t_run = time.perf_counter()
    if tee is not None:
        if replay is None:
            header = {
                "event": "run_start",
                "version": JOURNAL_VERSION,
                "circuit": circuit.name,
                "num_inputs": len(circuit.inputs),
                "num_outputs": len(circuit.outputs),
                "area": circuit.area(),
                "rs_threshold": threshold,
                "rs_max": float(maximum),
                "seed": cfg.seed,
                "num_vectors": estimator.num_vectors,
                "workers": num_workers,
                "config": asdict(cfg),
            }
        else:
            header = {
                "event": "resume",
                "version": JOURNAL_VERSION,
                "circuit": circuit.name,
                "replayed_iterations": len(replay.iterations),
                "area": replay.current.area(),
                "rs": replay.current_rs,
                "workers": num_workers,
            }
        # Only stamped when present, so journals of untraced runs (and
        # the golden fixtures) keep their historical shape.
        if trace_id is not None:
            header["trace_id"] = trace_id
        tee.emit(header)
    # Sampling starts only after the header emit, so the journal's
    # first line stays the run_start/resume event.
    if monitor is not None:
        monitor.start()
    try:
        _run_greedy(
            circuit,
            cfg,
            estimator,
            result,
            threshold,
            obs,
            tee,
            pool=pool,
            start_iteration=start_iteration,
            current_rs=current_rs,
            reference=reference,
            banned=banned,
            skip_prepass=skip_prepass,
            prev=prev,
        )
        # Stop sampling before the summary snapshot: the final sample's
        # gauges land in the summary, and the journal still ends with it.
        if monitor is not None:
            monitor.stop()
            obs.telemetry = None
            monitor = None
        if tee is not None:
            snap = obs.snapshot()
            tee.emit(
                {
                    "event": "summary",
                    "iterations": len(result.iterations),
                    "faults_injected": len(result.faults),
                    "area_before": circuit.area(),
                    "area_after": result.simplified.area(),
                    "area_reduction_pct": result.area_reduction_pct,
                    "final_er": result.final_metrics.er if result.final_metrics else None,
                    "final_es": result.final_metrics.es if result.final_metrics else None,
                    "final_rs": result.final_metrics.rs if result.final_metrics else None,
                    "elapsed_s": time.perf_counter() - t_run,
                    "timers": snap["timers"],
                    "counters": snap["counters"],
                    "gauges": snap["gauges"],
                }
            )
    finally:
        if monitor is not None:
            monitor.stop()
            obs.telemetry = None
        if pool is not None:
            pool.close()
        for j in own_journals:
            j.close()
    return result


def _check_config_matches(cfg: GreedyConfig, state) -> None:
    """Resuming with a different config would silently diverge: refuse."""
    from ..parallel.checkpoint import CheckpointError

    ours = asdict(cfg)
    theirs = state.config
    diffs = [
        f"{k}: given={ours[k]!r} checkpoint={theirs[k]!r}"
        for k in ours
        if k in theirs and ours[k] != theirs[k]
    ]
    if diffs:
        raise CheckpointError(
            f"{state.path}: config does not match the checkpointed run "
            f"({'; '.join(diffs)}); pass config=None to adopt the "
            f"checkpoint's config"
        )


def _rebuild_complete_result(
    circuit: Circuit,
    cfg: GreedyConfig,
    state,
    replay,
    maximum: float,
) -> GreedyResult:
    """Reconstruct the finished GreedyResult a complete checkpoint holds."""
    result = GreedyResult(
        original=circuit,
        simplified=replay.current,
        rs_threshold=state.rs_threshold,
        config=cfg,
        faults=list(replay.faults),
        iterations=list(replay.iterations),
        final_metrics=replay.final_metrics,
    )
    if result.final_metrics is None and state.summary is not None:
        s = state.summary
        if s.get("final_er") is not None:
            result.final_metrics = ErrorMetrics(
                er=float(s["final_er"]),
                es=int(s["final_es"]),
                observed_es=int(s["final_es"]),
                rs_maximum=int(maximum),
                num_vectors=state.num_vectors,
                es_mode="hybrid" if cfg.es_mode != "simulated" else "simulated",
            )
    return result


def _run_greedy(
    circuit: Circuit,
    cfg: GreedyConfig,
    estimator: MetricsEstimator,
    result: GreedyResult,
    threshold: float,
    obs: Instrumentation,
    journal: Optional[_JournalTee],
    pool=None,
    start_iteration: int = 0,
    current_rs: float = 0.0,
    reference: Optional[Circuit] = None,
    banned: Optional[Set[Tuple]] = None,
    skip_prepass: bool = False,
    prev: Optional[_MetricsCursor] = None,
) -> None:
    """The prepass + greedy loop proper, instrumented and journaled.

    The resume parameters (``start_iteration``, ``current_rs``,
    ``reference``, ``banned``, ``skip_prepass``, ``prev``) let a
    checkpoint replay drop the loop exactly where a killed run stopped;
    fresh runs use the defaults.
    """
    current = result.simplified
    banned = set() if banned is None else banned
    use_atpg = cfg.es_mode != "simulated"
    prev = _MetricsCursor() if prev is None else prev

    if cfg.redundancy_prepass and not skip_prepass:
        with obs.span("prepass"):
            current = _apply_redundancy_prepass(current, cfg, estimator, result)
        for rec in result.iterations:
            _emit_iteration(journal, rec, prev)
            # Prepass injections are PODEM-proven free: the selection-
            # time prediction is exactly zero ER and ES.
            _emit_calibration(
                journal,
                rec,
                predicted={"er": 0.0, "es": 0,
                           "area_delta": rec.area_delta, "fom": None},
                threshold=threshold,
                exhaustive=cfg.exhaustive,
            )
        if result.faults:
            # Every prepass injection is PODEM-proven function
            # preserving, so the restructured netlist can serve as the
            # good machine for subsequent affected-cone analysis.
            reference = current

    with obs.span("greedy"):
        for iteration in range(start_iteration, cfg.max_iterations):
            counters_base = dict(obs.counters)
            t0 = time.perf_counter()
            with obs.span("candidates"):
                candidates = _candidate_faults(current, cfg)
                candidates = [f for f in candidates if _fault_key(f) not in banned]
            t_candidates = time.perf_counter() - t0
            if not candidates:
                break

            t0 = time.perf_counter()
            with obs.span("rank"):
                scored = _rank_candidates(
                    current, candidates, cfg, estimator, threshold, current_rs,
                    pool=pool,
                )
            t_rank = time.perf_counter() - t0
            committed = False
            evaluated = len(scored)
            t0 = time.perf_counter()
            with obs.span("commit"):
                for fom_value, fault, _sim_rs, pred_er, pred_es, pred_delta in scored:
                    # Build the tentative netlist and take the commit
                    # decision with the configured (conservative) ES.
                    overlay = Overlay(current)
                    try:
                        overlay.apply(fault)
                    except Exception:
                        banned.add(_fault_key(fault))
                        _emit_rejection(journal, iteration, fault, "apply_failed")
                        continue
                    tentative = overlay.materialize(current.name)
                    accepted, metrics = estimator.check_rs(
                        threshold,
                        approx=tentative,
                        use_atpg=use_atpg,
                        pow2_es=cfg.pow2_es,
                        structural_reference=reference,
                    )
                    if not accepted:
                        obs.incr("greedy.commits_rejected")
                        banned.add(_fault_key(fault))
                        _emit_rejection(journal, iteration, fault, "rs_exceeded")
                        continue
                    rec = IterationRecord(
                        index=iteration,
                        fault=fault,
                        area_before=current.area(),
                        area_after=tentative.area(),
                        metrics=metrics,
                        fom_value=fom_value,
                        candidates_evaluated=evaluated,
                        phase_times={
                            "candidates": t_candidates,
                            "rank": t_rank,
                            "commit": time.perf_counter() - t0,
                        },
                        counters=obs.counters_since(counters_base),
                    )
                    result.iterations.append(rec)
                    result.faults.append(fault)
                    current = tentative
                    result.simplified = current
                    current_rs = metrics.rs
                    result.final_metrics = metrics
                    committed = True
                    obs.incr("greedy.commits_accepted")
                    _emit_iteration(journal, rec, prev)
                    _emit_calibration(
                        journal,
                        rec,
                        predicted={
                            "er": pred_er,
                            "es": pred_es,
                            "area_delta": pred_delta,
                            "fom": fom_value if math.isfinite(fom_value) else None,
                        },
                        threshold=threshold,
                        exhaustive=cfg.exhaustive,
                    )
                    break
            if not committed:
                break

    if result.final_metrics is None:
        # Under its own span: the trailing RS check is the last real
        # work of the run, and `repro profile` attributes wall time by
        # top-level span coverage.
        with obs.span("finalize"):
            _ok, result.final_metrics = estimator.check_rs(
                threshold,
                approx=current,
                use_atpg=use_atpg,
                structural_reference=reference,
            )


class _MetricsCursor:
    """Tracks the previous step's ER/ES/RS for journal delta fields."""

    __slots__ = ("er", "es", "rs")

    def __init__(self) -> None:
        self.er = 0.0
        self.es = 0
        self.rs = 0.0


def _emit_iteration(
    journal: Optional[_JournalTee], rec: IterationRecord, prev: _MetricsCursor
) -> None:
    """Emit one iteration event; advances the delta cursor either way."""
    m = rec.metrics
    if journal is not None:
        journal.emit(
            {
                "event": "iteration",
                "index": rec.index,
                "phase": rec.phase,
                "fault": str(rec.fault),
                "fault_detail": {
                    "signal": rec.fault.line.signal,
                    "gate": rec.fault.line.gate,
                    "pin": rec.fault.line.pin,
                    "value": rec.fault.value,
                },
                "area_before": rec.area_before,
                "area_after": rec.area_after,
                "er": m.er,
                "es": m.es,
                "observed_es": m.observed_es,
                "rs": m.rs,
                "es_mode": m.es_mode,
                "es_bound": m.es_bound,
                "delta_er": m.er - prev.er,
                "delta_es": m.es - prev.es,
                "delta_rs": m.rs - prev.rs,
                "fom": rec.fom_value if math.isfinite(rec.fom_value) else None,
                "candidates_evaluated": rec.candidates_evaluated,
                "phase_times": rec.phase_times,
                "counters": rec.counters,
            }
        )
    prev.er, prev.es, prev.rs = m.er, m.es, m.rs


def _emit_calibration(
    journal: Optional[_JournalTee],
    rec: IterationRecord,
    predicted: Optional[Dict],
    threshold: float,
    exhaustive: bool,
) -> None:
    """Journal the v3 calibration event for one committed step: the
    selection-time prediction next to the realized commit measurement,
    with the ER confidence interval and the budget-risk flag."""
    if journal is None:
        return
    from ..obs.quality import calibration_event

    journal.emit(
        calibration_event(
            index=rec.index,
            fault=str(rec.fault),
            metrics=rec.metrics,
            area_delta=rec.area_delta,
            rs_threshold=threshold,
            predicted=predicted,
            exact=exhaustive,
        )
    )


def _emit_rejection(
    journal: Optional[_JournalTee], iteration: int, fault: StuckAtFault, reason: str
) -> None:
    """Journal a commit-phase rejection (needed to resume bit-identically:
    the banned set must survive a process death, or a resumed run could
    re-accept a fault the original run had ruled out)."""
    if journal is not None:
        journal.emit(
            {
                "event": "rejection",
                "index": iteration,
                "fault": str(fault),
                "fault_detail": {
                    "signal": fault.line.signal,
                    "gate": fault.line.gate,
                    "pin": fault.line.pin,
                    "value": fault.value,
                },
                "reason": reason,
            }
        )


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _apply_redundancy_prepass(
    current: Circuit,
    cfg: GreedyConfig,
    estimator: MetricsEstimator,
    result: GreedyResult,
) -> Circuit:
    """Inject PODEM-proven redundant candidate faults (free area).

    Each proven fault is applied one at a time and re-validated by a
    differential simulation against the original (ER must stay exactly
    0 on the batch): injecting one redundancy can, in principle, turn a
    structurally different member of the remaining set non-redundant.
    """
    from ..atpg.podem import AtpgStatus, Podem
    from ..faults.collapse import collapse_faults

    candidates = _candidate_faults(current, cfg)
    if not candidates:
        return current
    classes = collapse_faults(current, candidates)

    # Random-pattern prescreen: any fault detected by the batch is
    # provably testable, so PODEM only runs on the undetected few.
    import numpy as np

    from ..simulation.faultsim import FaultSimulator
    from ..simulation.vectors import random_vectors

    screen_vecs = random_vectors(
        len(current.inputs), 256, np.random.default_rng(cfg.seed + 7)
    )
    fsim = FaultSimulator(current, obs=estimator.obs, engine=cfg.engine)
    survivors = []
    for rep, members in classes.members.items():
        d = fsim.differential(screen_vecs, [rep])
        if not d.detected.any():
            survivors.append((rep, members))

    podem = Podem(
        current, backtrack_limit=cfg.prepass_backtrack_limit, obs=estimator.obs
    )
    redundant: List[StuckAtFault] = []
    for rep, members in survivors:
        if podem.run(rep).status is AtpgStatus.REDUNDANT:
            # any member is behaviourally identical; keep the one that
            # frees the most area
            best = max(members, key=lambda f: _safe_preview(current, f))
            redundant.append(best)
    redundant.sort(key=lambda f: -_safe_preview(current, f))
    revalidate = False  # first injection is already proven on `current`
    for fault in redundant:
        overlay = Overlay(current)
        try:
            overlay.apply(fault)
        except Exception:
            continue
        if overlay.area_delta() <= 0:
            continue
        if revalidate:
            # Earlier injections rewrote the netlist; re-prove the fault
            # redundant on the *current* circuit so that the chain of
            # injections is exactly function-preserving (this is what
            # lets the result serve as a structural reference later).
            if not current.has_signal(fault.line.signal):
                continue
            recheck = Podem(
                current,
                backtrack_limit=cfg.prepass_backtrack_limit,
                obs=estimator.obs,
            )
            if recheck.run(fault).status is not AtpgStatus.REDUNDANT:
                continue
        tentative = overlay.materialize(current.name)
        er, observed = estimator.simulate(approx=tentative)
        if er > 0.0 or observed > 0:
            continue  # defensive: the proof chain should prevent this
        result.iterations.append(
            IterationRecord(
                index=len(result.iterations),
                fault=fault,
                area_before=current.area(),
                area_after=tentative.area(),
                metrics=ErrorMetrics(
                    er=0.0,
                    es=0,
                    observed_es=0,
                    rs_maximum=estimator.rs_maximum,
                    num_vectors=estimator.num_vectors,
                    es_mode="redundant",
                ),
                fom_value=float("inf"),
                candidates_evaluated=len(redundant),
                phase="prepass",
            )
        )
        result.faults.append(fault)
        current = tentative
        result.simplified = current
        revalidate = True
    return current


def _safe_preview(circuit: Circuit, fault: StuckAtFault) -> int:
    try:
        return preview_area_reduction(circuit, fault)
    except Exception:
        return -1


def _fault_key(fault: StuckAtFault) -> Tuple:
    return (fault.line.signal, fault.line.gate, fault.line.pin, fault.value)


def _candidate_faults(circuit: Circuit, cfg: GreedyConfig) -> List[StuckAtFault]:
    if cfg.datapath_only and circuit.control_outputs:
        return datapath_faults(circuit, include_branches=cfg.include_branches)
    if cfg.datapath_only:
        # no control outputs: every line is datapath
        return enumerate_faults(circuit, include_branches=cfg.include_branches)
    return enumerate_faults(circuit, include_branches=cfg.include_branches)


def _reachable_weight(circuit: Circuit) -> Dict[str, int]:
    """For every signal, the summed weight of data outputs it reaches.

    This is the structural upper bound on the ES any fault at that line
    can cause, computed in one reverse-topological sweep.
    """
    value_outputs = circuit.data_outputs or list(circuit.outputs)
    weights = {o: int(circuit.output_weights.get(o, 1)) for o in value_outputs}
    masks: Dict[str, int] = {s: 0 for s in circuit.signals()}
    for i, o in enumerate(value_outputs):
        masks[o] |= 1 << i
    order = circuit.topological_order()
    fan = circuit.fanout_map()
    for name in reversed(order):
        m = masks[name]
        for g, _pin in fan.get(name, ()):
            m |= masks[g]
        masks[name] = m
    for pi in circuit.inputs:
        m = masks[pi]
        for g, _pin in fan.get(pi, ()):
            m |= masks[g]
        masks[pi] = m
    wlist = [weights[o] for o in value_outputs]
    out: Dict[str, int] = {}
    for s, m in masks.items():
        total = 0
        i = 0
        while m:
            if m & 1:
                total += wlist[i]
            m >>= 1
            i += 1
        out[s] = total
    return out


def _rank_candidates(
    current: Circuit,
    candidates: Sequence[StuckAtFault],
    cfg: GreedyConfig,
    estimator: MetricsEstimator,
    threshold: float,
    current_rs: float,
    pool=None,
) -> List[Tuple[float, StuckAtFault, float, float, int, int]]:
    """Score candidates; sorted best first.

    Each entry is ``(fom, fault, simulated_rs, er, observed_es,
    area_delta)`` -- the trailing triple is the selection-time
    *prediction* the calibration events pair with the realized commit
    measurement.
    """
    reach = _reachable_weight(current)

    # Phase 1: structural proxy ranking (cheap) to pick the shortlist.
    proxied: List[Tuple[float, int, StuckAtFault]] = []
    for f in candidates:
        try:
            delta = preview_area_reduction(current, f)
        except Exception:
            continue  # e.g. a stem fault contradicting an existing constant
        if delta <= 0:
            continue
        wbound = reach.get(f.line.signal, 0)
        if cfg.fom == "area":
            proxy = float(delta)
        else:
            proxy = delta / (wbound + 1.0)
        proxied.append((proxy, delta, f))
    proxied.sort(key=lambda t: -t[0])
    shortlist = proxied if cfg.candidate_limit is None else proxied[: cfg.candidate_limit]

    # Phase 2: exact simulation-based scoring of the shortlist.  The
    # batch path computes the same (ER, observed-ES) pairs as one
    # estimator.simulate call per fault, restricted to each fault's
    # fanout cone; faults whose running RS lower bound already exceeds
    # the threshold are dropped mid-batch (they would be skipped below
    # anyway).
    eps = max(estimator.rs_maximum * 1e-15, 1e-12)
    if cfg.use_batch_ranking:
        scorer = pool if pool is not None else estimator
        stats = scorer.simulate_faults(
            [f for _proxy, _delta, f in shortlist],
            approx=current,
            rs_drop_threshold=threshold,
        )
        results = [(st.error_rate, st.max_abs_deviation, st.dropped) for st in stats]
    else:
        results = [
            estimator.simulate(approx=current, faults=[f]) + (False,)
            for _proxy, _delta, f in shortlist
        ]
    # Feeds the telemetry monitor's candidates_per_s throughput gauge.
    estimator.obs.incr("greedy.candidates_scored", len(shortlist))
    scored: List[Tuple[float, StuckAtFault, float, float, int, int]] = []
    for (_proxy, delta, f), (er, observed, dropped) in zip(shortlist, results):
        sim_rs = er * observed
        if dropped or sim_rs > threshold:
            continue  # the conservative ES can only be larger
        if cfg.fom == "area":
            fom = float(delta)
        else:
            fom = delta / max(sim_rs - current_rs, eps)
        scored.append((fom, f, sim_rs, er, observed, delta))
    scored.sort(key=lambda t: -t[0])
    return scored
