"""Classical redundancy removal (the paper's baseline, refs [13][14]).

Repeatedly: run ATPG over the (collapsed) fault list, pick a proven
redundant fault, inject it with the simplification engine -- which by
definition of redundancy preserves the implemented function exactly --
and iterate on the simplified circuit until no redundant fault remains.
The paper's method degenerates to this procedure at an RS threshold of
zero, which the test-suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..atpg.podem import AtpgStatus, Podem
from ..circuit import Circuit
from ..faults.collapse import collapse_faults
from ..faults.model import StuckAtFault
from .engine import Overlay, preview_area_reduction

__all__ = ["RedundancyRemovalResult", "remove_redundancies"]


@dataclass
class RedundancyRemovalResult:
    """Outcome of the redundancy-removal loop."""

    original: Circuit
    simplified: Circuit
    removed_faults: List[StuckAtFault] = field(default_factory=list)
    rounds: int = 0

    @property
    def area_reduction(self) -> int:
        return self.original.area() - self.simplified.area()

    @property
    def area_reduction_pct(self) -> float:
        base = self.original.area()
        return 100.0 * self.area_reduction / base if base else 0.0


def remove_redundancies(
    circuit: Circuit,
    backtrack_limit: int = 20_000,
    max_rounds: int = 50,
) -> RedundancyRemovalResult:
    """Iteratively remove redundant stuck-at faults until none remain.

    Each round scans the current circuit's collapsed fault list with
    PODEM; every redundant fault found is queued, but after each
    injection the remaining queue is re-validated (removing one
    redundancy can make another testable), so only one fault is
    injected per scan position and the scan restarts after the netlist
    changed.
    """
    result = RedundancyRemovalResult(original=circuit, simplified=circuit.copy())
    current = result.simplified
    for _round in range(max_rounds):
        result.rounds = _round + 1
        podem = Podem(current, backtrack_limit=backtrack_limit)
        classes = collapse_faults(current)
        injected: Optional[StuckAtFault] = None
        for rep in sorted(
            classes.representatives,
            key=lambda f: -preview_area_reduction(current, f),
        ):
            res = podem.run(rep)
            if res.status is AtpgStatus.REDUNDANT:
                injected = rep
                break
        if injected is None:
            break
        overlay = Overlay(current)
        overlay.apply(injected)
        current = overlay.materialize(current.name)
        result.removed_faults.append(injected)
        result.simplified = current
    return result
