"""Standalone netlist cleanup passes.

The overlay engine already produces clean netlists; these passes exist
for circuits arriving from other sources (hand-written ``.bench``
files, behavioural fault injection) and as building blocks for the
classical redundancy-removal baseline:

* :func:`remove_dead_logic` -- delete gates whose outputs reach no
  primary output (the backward-simplification step, applied globally);
* :func:`splice_buffers`   -- re-route consumers of BUF gates to the
  buffered source and delete buffers that are not primary outputs;
* :func:`propagate_constants` -- apply the Table I rules wherever a
  constant driver feeds a gate, to fixpoint.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..circuit import Circuit, GateType
from ..circuit.gates import constant_value, is_constant
from .tables import identity_value, rule_for, shrink_type

__all__ = ["remove_dead_logic", "splice_buffers", "propagate_constants", "full_cleanup"]


def remove_dead_logic(circuit: Circuit) -> List[str]:
    """Delete every gate with no path to a primary output (in place).

    Returns the names of removed gates.
    """
    fan = circuit.fanout_map()
    alive: Set[str] = set()
    stack = list(circuit.outputs)
    while stack:
        s = stack.pop()
        if s in alive:
            continue
        alive.add(s)
        g = circuit.driver(s)
        if g is not None:
            stack.extend(src for src in g.inputs if src not in alive)
    removed = [name for name in circuit.gates if name not in alive]
    # Delete in reverse topological order so fanout checks stay clean.
    order = circuit.topological_order()
    for name in reversed(order):
        if name in alive:
            continue
        circuit.remove_gate(name)
    return removed


def splice_buffers(circuit: Circuit) -> int:
    """Bypass BUF gates (in place); returns the number spliced.

    Buffers that drive a primary output are kept (the PO must keep its
    name) unless their source is itself a valid replacement is not
    attempted -- POs never change names here.
    """
    spliced = 0
    changed = True
    while changed:
        changed = False
        for name in list(circuit.gates):
            g = circuit.gates.get(name)
            if g is None or g.gtype is not GateType.BUF:
                continue
            src = g.inputs[0]
            consumers = list(circuit.fanout_map().get(name, ()))
            for gname, pin in consumers:
                circuit.rewire_pin(gname, pin, src)
                changed = True
            if not circuit.is_output(name) and not circuit.fanout_map().get(name):
                circuit.remove_gate(name)
                spliced += 1
                changed = True
    return spliced


def propagate_constants(circuit: Circuit) -> int:
    """Fold constants through the netlist per Table I (in place).

    Returns the number of gates rewritten.  One topological sweep per
    round; rounds repeat until a fixpoint (constants only flow forward,
    so two rounds suffice in practice).
    """
    rewritten = 0
    changed = True
    while changed:
        changed = False
        for name in circuit.topological_order():
            g = circuit.gates.get(name)
            if g is None or is_constant(g.gtype):
                continue
            const_pins: List[Tuple[int, int]] = []
            for pin, src in enumerate(g.inputs):
                v = circuit.constant_output_value(src)
                if v is not None:
                    const_pins.append((pin, v))
            if not const_pins:
                continue
            gt = g.gtype
            folded = None
            keep: List[str] = list(g.inputs)
            drop_pins: Set[int] = set()
            for pin, v in const_pins:
                rule = rule_for(gt, v)
                if rule.action == "FOLD":
                    folded = rule.output
                    break
                drop_pins.add(pin)
                if rule.flip:
                    gt = GateType.XNOR if gt is GateType.XOR else GateType.XOR
            if folded is not None:
                circuit.replace_gate(
                    name, GateType.CONST1 if folded else GateType.CONST0, ()
                )
                rewritten += 1
                changed = True
                continue
            remaining = [s for p, s in enumerate(keep) if p not in drop_pins]
            if not remaining:
                v = identity_value(gt)
                circuit.replace_gate(name, GateType.CONST1 if v else GateType.CONST0, ())
            elif len(remaining) == 1 and gt not in (GateType.NOT, GateType.BUF):
                circuit.replace_gate(name, shrink_type(gt), remaining)
            else:
                circuit.replace_gate(name, gt, remaining)
            rewritten += 1
            changed = True
    return rewritten


def full_cleanup(circuit: Circuit) -> Dict[str, int]:
    """Constants, buffers, dead logic -- to fixpoint.  Returns counts."""
    stats = {"constants_folded": 0, "buffers_spliced": 0, "dead_removed": 0}
    while True:
        a = propagate_constants(circuit)
        b = splice_buffers(circuit)
        c = len(remove_dead_logic(circuit))
        stats["constants_folded"] += a
        stats["buffers_spliced"] += b
        stats["dead_removed"] += c
        if a == b == c == 0:
            return stats
