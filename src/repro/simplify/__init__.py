"""Circuit simplification: Table I engine, greedy heuristic, baselines."""

from .tables import TABLE_I, Rule, identity_value, rule_for, shrink_type
from .engine import (
    Overlay,
    preview_area_reduction,
    simplify_with_fault,
    simplify_with_faults,
)
from .cleanup import full_cleanup, propagate_constants, remove_dead_logic, splice_buffers
from .redundancy import RedundancyRemovalResult, remove_redundancies
from .greedy import GreedyConfig, GreedyResult, IterationRecord, circuit_simplify

__all__ = [
    "TABLE_I",
    "Rule",
    "rule_for",
    "identity_value",
    "shrink_type",
    "Overlay",
    "simplify_with_fault",
    "simplify_with_faults",
    "preview_area_reduction",
    "full_cleanup",
    "propagate_constants",
    "remove_dead_logic",
    "splice_buffers",
    "RedundancyRemovalResult",
    "remove_redundancies",
    "GreedyConfig",
    "GreedyResult",
    "IterationRecord",
    "circuit_simplify",
]
