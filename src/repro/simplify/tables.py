"""Table I of the paper: forward-simplification rules per gate type.

Each rule describes what happens when a constant arrives at one input
of a gate:

* ``FOLD``   -- the constant is the gate's controlling value (or the
  gate is an inverter/buffer): the gate is removed, its output becomes
  the given constant, forward implication continues with that constant,
  and *backward simplification* is performed at every other input.
* ``DROP``   -- the constant is non-controlling: the input is
  disconnected and removed (the gate shrinks to n-1 inputs) and forward
  implication stops.  ``flip`` marks the XOR/XNOR case where dropping a
  constant-1 input also toggles the gate's polarity (XOR becomes XNOR
  and vice versa).

The table is exported as data so that the engine and the test-suite
share one canonical statement of the rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..circuit import GateType

__all__ = ["Action", "Rule", "TABLE_I", "rule_for", "identity_value", "shrink_type"]


@dataclass(frozen=True)
class Rule:
    """Outcome of a constant at one gate input."""

    action: str  # "FOLD" or "DROP"
    output: Optional[int] = None  # constant driven at the output (FOLD only)
    flip: bool = False  # XOR<->XNOR polarity toggle (DROP only)


FOLD = "FOLD"
DROP = "DROP"

#: (gate type, constant value at input) -> rule.  Verbatim Table I plus
#: the NOT/BUF rows, which the paper leaves implicit.
TABLE_I: Dict[Tuple[GateType, int], Rule] = {
    (GateType.NAND, 0): Rule(FOLD, output=1),
    (GateType.NAND, 1): Rule(DROP),
    (GateType.AND, 0): Rule(FOLD, output=0),
    (GateType.AND, 1): Rule(DROP),
    (GateType.NOR, 0): Rule(DROP),
    (GateType.NOR, 1): Rule(FOLD, output=0),
    (GateType.OR, 0): Rule(DROP),
    (GateType.OR, 1): Rule(FOLD, output=1),
    (GateType.XOR, 0): Rule(DROP),
    (GateType.XOR, 1): Rule(DROP, flip=True),
    (GateType.XNOR, 0): Rule(DROP),
    (GateType.XNOR, 1): Rule(DROP, flip=True),
    (GateType.NOT, 0): Rule(FOLD, output=1),
    (GateType.NOT, 1): Rule(FOLD, output=0),
    (GateType.BUF, 0): Rule(FOLD, output=0),
    (GateType.BUF, 1): Rule(FOLD, output=1),
}


def rule_for(gtype: GateType, const_value: int) -> Rule:
    """Look up the Table I rule for a constant at a gate input."""
    try:
        return TABLE_I[(gtype, const_value)]
    except KeyError:
        raise ValueError(f"no forward rule for {gtype!r} with constant {const_value}") from None


#: Output value of a gate whose inputs have *all* been dropped as
#: non-controlling constants (the gate's identity element, inverted for
#: the inverting types).  XOR/XNOR resolve through polarity flips, so
#: their entry is the plain even-parity value.
_IDENTITY: Dict[GateType, int] = {
    GateType.AND: 1,
    GateType.NAND: 0,
    GateType.OR: 0,
    GateType.NOR: 1,
    GateType.XOR: 0,
    GateType.XNOR: 1,
}


def identity_value(gtype: GateType) -> int:
    """Constant produced when every input of the gate has been dropped."""
    try:
        return _IDENTITY[gtype]
    except KeyError:
        raise ValueError(f"{gtype!r} cannot lose all inputs") from None


#: Replacement when a multi-input gate shrinks to a single input:
#: non-inverting types become wires, inverting types become inverters
#: (Fig. 4: "gate K becomes an inverter").
_SHRINK: Dict[GateType, GateType] = {
    GateType.AND: GateType.BUF,
    GateType.OR: GateType.BUF,
    GateType.XOR: GateType.BUF,
    GateType.NAND: GateType.NOT,
    GateType.NOR: GateType.NOT,
    GateType.XNOR: GateType.NOT,
}


def shrink_type(gtype: GateType) -> GateType:
    """Gate type after shrinking to one remaining input."""
    try:
        return _SHRINK[gtype]
    except KeyError:
        raise ValueError(f"{gtype!r} cannot shrink to one input") from None
