"""Command-line interface.

``python -m repro <command>`` exposes the main flows on gate-level
netlists (ISCAS85 ``.bench`` or structural Verilog ``.v``, selected by
file extension) and on the built-in benchmark suite:

* ``stats``      -- netlist statistics and datapath/control profile
* ``simplify``   -- RS-budgeted simplification of a netlist
* ``report``     -- profiling view over a run journal (text, JSON, or
  OpenMetrics/Prometheus exposition via ``--format openmetrics``)
* ``profile``    -- self-time attribution over a run journal: exclusive
  time per span, wall-clock attribution coverage (flags unattributed
  time), kernel bytes-moved throughput, the sampled peak-RSS timeline
  and per-worker utilization (needs a run with ``--telemetry-interval``)
* ``compare``    -- iteration-by-iteration diff of two run journals
* ``audit``      -- estimator-calibration / RS-budget audit of a run
  journal: predicted vs. realized deltas per committed fault, Wilson
  ER confidence intervals, budget-risk flags (exit 3 when any fire),
  and ``--exact`` BDD cross-check of the final ER on small circuits
* ``trends``     -- benchmark history + trailing-median regression gate
* ``redundancy`` -- classical redundancy removal only
* ``table2``     -- one Table II row on a built-in ISCAS85-like circuit
* ``dct-study``  -- the Section II JPEG/DCT application study
* ``er-tests``   -- error-rate test generation (ERTG flow)
* ``yield``      -- effective-yield analysis on a defect population
* ``serve``      -- run the simplification job server (versioned HTTP
  API, bounded queue, crash-resumable worker pool, result cache)
* ``submit``     -- submit a netlist to a running job server; with
  ``--wait`` polls to completion and renders the report, with
  ``--trace-id`` stamps a correlation id through the whole lifetime
* ``jobs``       -- list/inspect/cancel jobs on a running server
* ``slo``        -- latency quantiles (p50/p90/p99) from a server's
  OpenMetrics histograms, with ``--fail-over`` CI gates (exit 3)
* ``top``        -- live fleet view of a running job server (one
  refreshing TTY table; ``--once`` prints a single snapshot)
* ``errors``     -- fleet error clusters (normalized-traceback
  fingerprints) from a live server's ``/v1/errors``, a saved scrape,
  or a service data dir offline
* ``postmortem`` -- human crash report from a job's ``crash/`` bundle
  (stack dump, journal tail, fingerprint) or a bare run journal

All human-facing output goes through the ``repro`` logging tree
(INFO -> stdout, WARNING+ -> stderr), configured by the global
``--verbose`` / ``--quiet`` flags; library code never prints directly,
and Python warnings are captured into the same tree so ``--quiet``
genuinely silences everything below WARNING.  ``simplify`` and
``table2`` accept ``--journal PATH`` to stream a structured JSONL run
journal and ``--profile`` to dump the phase-time / counter breakdown
after the run; ``simplify`` additionally takes ``--trace PATH`` (Chrome
trace export, Perfetto-loadable, per-worker lanes),
``--progress PATH`` (atomic machine-readable heartbeat plus a
``telemetry.prom`` OpenMetrics drop next to it; a live TTY stderr line
appears automatically when stderr is a terminal and ``--quiet`` is not
set) and ``--telemetry-interval SECONDS`` (background RSS/CPU/
throughput sampling into the journal); ``report`` and ``profile``
render the journal views later.

Output netlists are written in the format implied by the output path's
extension.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from .circuit import dump_bench, dump_verilog, load_bench, load_verilog
from .faults import datapath_faults, enumerate_faults
from .metrics import rs_max
from .obs import (
    Instrumentation,
    JournalError,
    ProgressReporter,
    TraceRecorder,
    append_history,
    compare_files,
    detect_regressions,
    load_bench_file,
    read_history,
    render_compare,
    render_snapshot,
    report_from_file,
    write_chrome_trace,
)
from .simplify import GreedyConfig, circuit_simplify, remove_redundancies

__all__ = ["main"]

logger = logging.getLogger("repro.cli")


class _PipeSafeHandler(logging.StreamHandler):
    """StreamHandler that stays quiet when the consumer hangs up.

    ``repro ... | head`` closes stdout mid-stream; the stock handler
    would print one BrokenPipeError traceback per remaining record.
    """

    def handleError(self, record: logging.LogRecord) -> None:
        exc = sys.exc_info()[0]
        if exc is not None and issubclass(exc, BrokenPipeError):
            return
        super().handleError(record)


def _configure_logging(verbose: bool, quiet: bool) -> None:
    """Route the ``repro`` logging tree: INFO/DEBUG to stdout (the
    command's payload), WARNING and above to stderr.  Reconfigured on
    every ``main()`` call so repeated in-process invocations (tests)
    pick up the current stream objects."""
    root = logging.getLogger("repro")
    root.handlers.clear()
    root.setLevel(logging.DEBUG if verbose else logging.INFO)
    root.propagate = False

    out = _PipeSafeHandler(sys.stdout)
    out.setFormatter(logging.Formatter("%(message)s"))
    out.addFilter(lambda record: record.levelno < logging.WARNING)
    if quiet:
        out.setLevel(logging.CRITICAL)  # payload suppressed, errors kept
    root.addHandler(out)

    err = _PipeSafeHandler(sys.stderr)
    err.setLevel(logging.WARNING)
    err.setFormatter(logging.Formatter("%(levelname)s: %(message)s"))
    root.addHandler(err)

    # Python warnings must obey the same config instead of writing to
    # stderr behind the logging tree's back -- the ``--quiet`` contract
    # is "WARNING+ on stderr, nothing else, all of it through logging".
    logging.captureWarnings(True)
    pywarn = logging.getLogger("py.warnings")
    pywarn.handlers.clear()
    pywarn.propagate = False
    pywarn.addHandler(err)


def _add_greedy_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--rs-pct", type=float, default=None,
                   help="RS threshold as percent of the circuit's maximum RS")
    p.add_argument("--rs", type=float, default=None,
                   help="absolute RS threshold")
    p.add_argument("--vectors", type=int, default=10_000,
                   help="simulation vectors for ER estimation (default 10000)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fom", choices=["area_per_rs", "area", "best"],
                   default="area_per_rs",
                   help="figure of merit; 'best' runs both and keeps the "
                        "better result (the paper's methodology)")
    p.add_argument("--candidate-limit", type=int, default=200)
    p.add_argument("--exhaustive", action="store_true",
                   help="simulate all 2**n input vectors instead of a "
                        "random sample (small circuits; makes every ER "
                        "exact and every confidence interval zero-width)")
    p.add_argument("--no-prepass", action="store_true",
                   help="skip the redundancy-removal prepass")
    p.add_argument("--pow2-es", action="store_true",
                   help="paper-conservative power-of-two ES in commit checks")
    p.add_argument("--weights", choices=["unit", "binary"], default="binary",
                   help="output weights when the netlist has none "
                        "(binary: bit i of the output list weighs 2**i)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="processes for candidate scoring (0: one per CPU; "
                        "default: the REPRO_WORKERS env var, else serial); "
                        "parallel runs pick the same faults as serial runs")
    p.add_argument("--engine", choices=["auto", "compiled", "python"],
                   default="auto",
                   help="simulation engine: the compiled whole-netlist "
                        "kernel or the per-gate python simulator "
                        "(bit-identical results; default: the REPRO_ENGINE "
                        "env var, else compiled; a netlist the compiler "
                        "rejects falls back to python automatically)")


def _add_obs_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="stream a structured JSONL run journal here "
                        "(render it later with `repro report PATH`)")
    p.add_argument("--profile", action="store_true",
                   help="print the phase-time / counter breakdown after the run")


def _add_live_obs_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="export a Chrome trace (Perfetto/chrome://tracing "
                        "loadable) of the run's spans here, with one lane "
                        "per scoring worker process")
    p.add_argument("--progress", default=None, metavar="PATH",
                   help="write a machine-readable progress snapshot here "
                        "(atomic replace) every few seconds; a live stderr "
                        "line appears on a TTY regardless of this flag")
    p.add_argument("--progress-interval", type=float, default=2.0,
                   metavar="SECONDS",
                   help="minimum seconds between progress snapshots "
                        "(default 2)")
    p.add_argument("--telemetry-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="sample RSS/CPU/throughput every SECONDS into the "
                        "journal (v4 telemetry events; workers report one "
                        "sample per scored shard); render with "
                        "`repro profile` or `repro report --format "
                        "openmetrics`")


def _load_weighted(path: str, weights: str):
    """Load a netlist (.bench or .v, by extension) and weight outputs."""
    if str(path).endswith((".v", ".sv")):
        circuit = load_verilog(path)
    else:
        circuit = load_bench(path)
    if weights == "binary":
        for i, o in enumerate(circuit.outputs):
            circuit.output_weights[o] = 1 << i
    return circuit


def _dump(circuit, path: str) -> None:
    """Write a netlist in the format implied by the extension."""
    if str(path).endswith((".v", ".sv")):
        dump_verilog(circuit, path)
    else:
        dump_bench(circuit, path)


def _config(args: argparse.Namespace) -> GreedyConfig:
    return GreedyConfig(
        num_vectors=args.vectors,
        seed=args.seed,
        fom=args.fom,
        candidate_limit=args.candidate_limit,
        exhaustive=args.exhaustive,
        redundancy_prepass=not args.no_prepass,
        pow2_es=args.pow2_es,
        engine=getattr(args, "engine", None),
    )


def _instrumentation(args: argparse.Namespace) -> Optional[Instrumentation]:
    """An explicit registry when the run is profiled or journaled."""
    if getattr(args, "profile", False) or getattr(args, "journal", None):
        return Instrumentation()
    return None


def cmd_stats(args: argparse.Namespace) -> int:
    circuit = _load_weighted(args.netlist, args.weights)
    s = circuit.stats()
    for k, v in s.items():
        logger.info(f"{k:>14}: {v}")
    nf = len(enumerate_faults(circuit))
    nd = len(datapath_faults(circuit))
    logger.info(f"{'fault sites':>14}: {nf}")
    logger.info(f"{'datapath %':>14}: {100 * nd / nf:.2f}")
    logger.info(f"{'RS_max':>14}: {rs_max(circuit)}")
    return 0


def cmd_simplify(args: argparse.Namespace) -> int:
    from .core import ReproError, SimplifyRequest

    if (args.rs is None) == (args.rs_pct is None):
        logger.error("give exactly one of --rs / --rs-pct")
        return 2
    # The request owns output weighting; load the netlist untouched.
    circuit = _load_weighted(args.netlist, "unit")
    obs = _instrumentation(args)
    if args.trace:
        if obs is None:
            obs = Instrumentation()
        obs.tracer = TraceRecorder()
    # The live stderr heartbeat is human-facing output: it exists only
    # on a real terminal and never under --quiet.  The --progress JSON
    # snapshot is machine-facing and is written either way.
    heartbeat = sys.stderr.isatty() and not args.quiet
    progress = None
    prom_path = None
    if args.progress:
        # The OpenMetrics drop lives next to progress.json so a
        # textfile collector scrapes one directory.
        prom_path = str(Path(args.progress).absolute().with_name("telemetry.prom"))
    if args.progress or heartbeat:
        progress = ProgressReporter(
            stream=sys.stderr if heartbeat else None,
            json_path=args.progress,
            interval_s=args.progress_interval,
            prom_path=prom_path,
        )
    try:
        request = SimplifyRequest.from_cli_args(args)
    except ValueError as exc:
        logger.error(str(exc))
        if progress is not None:
            progress.close()
        return 2
    try:
        outcome = request.run(circuit, obs=obs, progress=progress)
    except ReproError as exc:
        # Taxonomy errors (checkpoint mismatch, invalid request, ...)
        # carry a stable machine code; surface it alongside the text.
        logger.error(f"{exc.code}: {exc}")
        return 2
    finally:
        if progress is not None:
            progress.close()
    logger.info(outcome.report())
    logger.info(f"\nelapsed: {outcome.elapsed_s:.1f}s")
    if args.journal:
        logger.info(f"run journal written to {args.journal}")
    if args.checkpoint:
        logger.info(f"checkpoint written to {args.checkpoint}")
    if args.trace:
        spans = write_chrome_trace(args.trace, obs.tracer)
        logger.info(f"chrome trace written to {args.trace} ({spans} spans)")
    if args.progress:
        logger.info(f"progress snapshot written to {args.progress}")
        logger.info(f"openmetrics snapshot written to {prom_path}")
    if args.profile and obs is not None:
        logger.info("\n" + render_snapshot(obs.snapshot()))
    if args.output:
        outcome.save(args.output)
        logger.info(f"approximate netlist written to {args.output}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    try:
        if args.format in ("json", "openmetrics"):
            from .obs import journal_openmetrics, load_journal, report_as_dict

            events = load_journal(args.journal, skip_unknown=True)
            if not events:
                raise JournalError(f"{args.journal}: empty journal")
            if args.format == "json":
                logger.info(
                    json.dumps(report_as_dict(events, top_k=args.top),
                               indent=2, sort_keys=True)
                )
            else:
                # rstrip: logger.info appends the final newline itself.
                logger.info(journal_openmetrics(events).rstrip("\n"))
        else:
            logger.info(report_from_file(args.journal, top_k=args.top))
    except FileNotFoundError:
        logger.error(f"no such journal: {args.journal}")
        return 2
    except JournalError as exc:
        logger.error(str(exc))
        return 2
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .obs import profile_events, render_profile
    from .obs.journal import load_journal

    try:
        events = load_journal(args.journal, skip_unknown=True)
        if not events:
            raise JournalError(f"{args.journal}: empty journal")
        profile = profile_events(events, top=args.top)
    except FileNotFoundError:
        logger.error(f"no such journal: {args.journal}")
        return 2
    except JournalError as exc:
        logger.error(str(exc))
        return 2
    if args.format == "json":
        logger.info(json.dumps(profile, indent=2, sort_keys=True))
    else:
        logger.info(render_profile(profile))
    if args.fail_on_unattributed and profile["attribution"]["flagged"]:
        return 3
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    try:
        cmp = compare_files(args.journal_a, args.journal_b)
    except FileNotFoundError as exc:
        logger.error(f"no such journal: {exc.filename}")
        return 2
    except JournalError as exc:
        logger.error(str(exc))
        return 2
    if args.format == "json":
        logger.info(json.dumps(cmp, indent=2, sort_keys=True))
    else:
        logger.info(render_compare(cmp, top_k=args.top))
    if args.fail_on_divergence and not cmp["identical_trajectory"]:
        return 3
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from .obs import audit_file, exact_er_check, render_audit

    try:
        audit = audit_file(args.journal, z=args.z)
    except FileNotFoundError:
        logger.error(f"no such journal: {args.journal}")
        return 2
    except JournalError as exc:
        logger.error(str(exc))
        return 2

    if args.exact:
        from .bdd import BddLimitExceeded
        from .parallel import CheckpointError

        if not args.netlist:
            logger.error("--exact needs --netlist to replay the journal against")
            return 2
        circuit = _load_weighted(args.netlist, args.weights)
        try:
            audit["exact"] = exact_er_check(
                circuit, args.journal, audit, node_limit=args.node_limit
            )
        except (CheckpointError, BddLimitExceeded) as exc:
            logger.error(str(exc))
            return 2

    if args.format == "json":
        logger.info(json.dumps(audit, indent=2, sort_keys=True))
    else:
        logger.info(render_audit(audit))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(audit, fh, indent=2, sort_keys=True)
            fh.write("\n")
        logger.info(f"audit written to {args.output}")
    if audit["budget_risk_count"] > 0:
        return 3
    if args.exact and not audit["exact"]["agrees"]:
        return 3
    return 0


def cmd_trends(args: argparse.Namespace) -> int:
    try:
        history = read_history(args.history)
    except ValueError as exc:
        logger.error(str(exc))
        return 2
    regressions = []
    for path in args.bench:
        try:
            name, rows = load_bench_file(path)
        except FileNotFoundError:
            logger.warning(f"trends: no such bench snapshot: {path}")
            continue
        except (ValueError, json.JSONDecodeError) as exc:
            logger.warning(f"trends: skipping {path}: {exc}")
            continue
        flagged = detect_regressions(
            history, name, rows,
            threshold=args.threshold / 100.0, window=args.window,
        )
        for reg in flagged:
            logger.warning(reg.describe())
        logger.info(
            f"TREND {name}: {len(rows)} row(s), "
            f"{len(flagged)} regression(s) vs trailing median "
            f"(window {args.window}, threshold {args.threshold:g}%)"
        )
        if not args.no_append:
            try:
                history.extend(append_history(args.history, name, rows))
            except OSError as exc:
                logger.error(f"trends: cannot write history {args.history}: {exc}")
                return 2
        regressions.extend(flagged)
    if regressions and args.fail_on_regression:
        return 3
    return 0


def cmd_redundancy(args: argparse.Namespace) -> int:
    circuit = _load_weighted(args.netlist, args.weights)
    res = remove_redundancies(circuit)
    logger.info(f"removed {len(res.removed_faults)} redundant fault(s); "
                f"area {circuit.area()} -> {res.simplified.area()} "
                f"({res.area_reduction_pct:.2f}%)")
    for f in res.removed_faults:
        logger.info(f"  {f}")
    if args.output:
        _dump(res.simplified, args.output)
        logger.info(f"netlist written to {args.output}")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    from .benchlib import ISCAS85_SUITE

    profile = ISCAS85_SUITE[args.circuit]
    circuit = profile.builder()
    logger.info(f"{args.circuit}-like: area {circuit.area()} (paper {profile.paper_area})")
    config = _config(args)
    obs = _instrumentation(args)
    sweep = [args.rs_pct] if args.rs_pct is not None else list(profile.rs_pct_sweep)
    for i, pct in enumerate(sweep):
        t0 = time.time()
        # one journal path serves one run: suffix additional sweep points
        journal = args.journal
        if journal and len(sweep) > 1:
            journal = f"{journal}.{pct:g}"
        res = circuit_simplify(
            circuit, rs_pct_threshold=pct, config=config, journal=journal,
            obs=obs, workers=args.workers,
        )
        idx = (
            profile.rs_pct_sweep.index(pct)
            if pct in profile.rs_pct_sweep
            else None
        )
        paper = (
            f"{profile.paper_area_reduction_pct[idx]:.2f}%" if idx is not None else "n/a"
        )
        logger.info(f"  %RS={pct:g}: ours {res.area_reduction_pct:.2f}%  paper {paper}  "
                    f"({len(res.faults)} faults, {time.time() - t0:.1f}s)")
    if args.profile and obs is not None:
        logger.info("\n" + render_snapshot(obs.snapshot()))
    return 0


def cmd_dct_study(args: argparse.Namespace) -> int:
    from .dct import (
        ACCEPTABLE_PSNR,
        figure2_configurations,
        psnr_vs_rs_curve,
        render_grid,
        test_image,
    )

    image = test_image(args.size)
    logger.info("=== Figure 2 ===")
    for grid, p in figure2_configurations(image):
        logger.info(f"{p.label}: PSNR={p.psnr_db:.2f} dB RS(Sum)={p.rs_sum:.3g} "
                    f"{'acceptable' if p.acceptable else 'NOT acceptable'}")
        logger.info(render_grid(grid))
    logger.info("\n=== Figure 3 ===")
    for p in psnr_vs_rs_curve(image, num_points=11):
        logger.info(f"  RS(Sum)={p.rs_sum:12.4g}  PSNR={p.psnr_db:6.2f} dB")
    return 0


def cmd_er_tests(args: argparse.Namespace) -> int:
    from .atpg import generate_er_tests

    circuit = _load_weighted(args.netlist, args.weights)
    ts = generate_er_tests(
        circuit,
        er_threshold=args.er,
        num_candidates=args.candidates,
        seed=args.seed,
    )
    logger.info(f"targets (ER > {args.er:g}): {len(ts.targets)} faults, "
                f"{ts.skipped_faults} tolerable faults skipped")
    logger.info(f"test set: {ts.num_tests} vectors, coverage {100 * ts.coverage:.1f}%")
    if args.output:
        with open(args.output, "w") as fh:
            for row in ts.vectors:
                fh.write("".join("1" if b else "0" for b in row) + "\n")
        logger.info(f"vectors written to {args.output} (one per line, input order)")
    return 0


def cmd_yield(args: argparse.Namespace) -> int:
    import numpy as np

    from .yieldsim import classify_population, sample_population

    circuit = _load_weighted(args.netlist, args.weights)
    chips = sample_population(
        circuit,
        args.chips,
        defect_density=args.density,
        rng=np.random.default_rng(args.seed),
    )
    threshold = (
        args.rs
        if args.rs is not None
        else (args.rs_pct or 0.0) / 100.0 * rs_max(circuit)
    )
    report = classify_population(
        circuit, chips, threshold, num_vectors=args.vectors, seed=args.seed
    )
    logger.info(report)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve

    serve(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_attempts=args.max_retries,
        hang_timeout_s=args.hang_timeout or None,
        log_max_bytes=args.log_max_bytes or None,
        log_keep=args.log_keep,
    )
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .core import ReproError, SimplifyOutcome, SimplifyRequest
    from .service import ServiceClient

    if (args.rs is None) == (args.rs_pct is None):
        logger.error("give exactly one of --rs / --rs-pct")
        return 2
    try:
        with open(args.netlist, "r", encoding="utf-8") as fh:
            bench_text = fh.read()
    except OSError as exc:
        logger.error(f"cannot read {args.netlist}: {exc}")
        return 2
    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        request = SimplifyRequest.from_cli_args(args)
        snap = client.submit(
            request,
            netlist=bench_text,
            name=Path(args.netlist).stem,
            trace_id=args.trace_id,
        )
        logger.info(f"{snap['job_id']}: {snap['state']}"
                    + (" (served from cache)" if snap.get("cached") else "")
                    + (" (coalesced onto an identical job)"
                       if snap.get("deduplicated") else ""))
        if snap.get("trace_id"):
            logger.info(f"trace_id: {snap['trace_id']}")
        if not args.wait:
            logger.info(f"poll with: repro jobs {snap['job_id']} --url {args.url}")
            return 0
        final = client.wait(
            snap["job_id"], timeout=args.timeout, poll_interval=args.poll_interval
        )
        if final["state"] != "done":
            err = final.get("error") or {}
            logger.error(f"{snap['job_id']} {final['state']}: "
                         f"{err.get('code', '?')}: {err.get('message', '')}")
            return 3
        outcome = SimplifyOutcome.from_json(client.result_json(snap["job_id"]))
    except ReproError as exc:
        logger.error(f"{exc.code}: {exc}")
        return 2
    logger.info(outcome.report())
    if args.output:
        outcome.save(args.output)
        logger.info(f"approximate netlist written to {args.output}")
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    from .core import ReproError
    from .obs.slo import (
        check_fail_over,
        parse_fail_over,
        parse_openmetrics_histograms,
        render_slo,
        summarize_histograms,
    )

    try:
        gates = parse_fail_over(args.fail_over or [])
    except ValueError as exc:
        logger.error(str(exc))
        return 2
    if "://" in args.source:
        from .service import ServiceClient

        try:
            text = ServiceClient(args.source, timeout=args.timeout).metrics()
        except ReproError as exc:
            logger.error(f"{exc.code}: {exc}")
            return 2
    else:
        try:
            with open(args.source, "r", encoding="utf-8") as fh:
                text = fh.read()
        except (OSError, UnicodeDecodeError, ValueError) as exc:
            # UnicodeDecodeError: a binary/torn scrape file must exit
            # cleanly, not traceback.
            logger.error(f"cannot read {args.source}: {exc}")
            return 2
    try:
        families = parse_openmetrics_histograms(text)
    except (ValueError, KeyError) as exc:
        logger.error(f"{args.source}: not a parseable OpenMetrics "
                     f"exposition: {exc}")
        return 2
    if not families:
        logger.error(f"{args.source}: no histogram families in the exposition "
                     f"(is the server new enough to export SLO histograms?)")
        return 2
    summary = summarize_histograms(families)
    if args.format == "json":
        logger.info(json.dumps(summary, indent=2, sort_keys=True))
    else:
        logger.info(render_slo(summary))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        logger.info(f"SLO summary written to {args.output}")
    violations = check_fail_over(families, gates)
    for v in violations:
        logger.error(f"SLO violation: {v}")
    return 3 if violations else 0


def _top_lines(health, jobs, url: str, limit: int) -> List[str]:
    """Render one fleet-view frame as plain lines."""
    states = {}
    for j in jobs:
        states[j["state"]] = states.get(j["state"], 0) + 1
    lines = [
        f"repro fleet @ {url} -- v{health.get('version', '?')}, "
        f"{health.get('workers', '?')} workers, "
        f"queue depth {health.get('queue_depth', '?')}, "
        f"uptime {health.get('uptime_s', 0.0):.0f}s",
        "  ".join(f"{s}:{states.get(s, 0)}"
                  for s in ("queued", "running", "done", "failed", "cancelled")),
        "",
        f"{'JOB':<12} {'STATE':<9} {'CIRCUIT':<10} {'ATT':>3} "
        f"{'ITER':>5} {'AREA':>6} {'RS':>9} {'AGE':>6}  TRACE",
    ]
    # Active work floats to the top; within a band, newest first
    # (ids are zero-padded, so reverse-id order is reverse-submit order).
    order = {"running": 0, "queued": 1, "done": 2, "failed": 3, "cancelled": 4}
    ranked = sorted(jobs, key=lambda j: j["job_id"], reverse=True)
    ranked.sort(key=lambda j: order.get(j["state"], 9))
    now = time.time()
    for j in ranked[:limit]:
        progress = j.get("progress") or {}
        iteration = progress.get("iteration")
        area = progress.get("area")
        rs = progress.get("rs")
        age = now - (j.get("submitted_unix") or now)
        trace = (j.get("trace_id") or "")[:16]
        lines.append(
            f"{j['job_id']:<12} {j['state']:<9} {j.get('circuit', '?'):<10} "
            f"{j.get('attempts', 0):>3} "
            f"{iteration if iteration is not None else '-':>5} "
            f"{area if area is not None else '-':>6} "
            f"{f'{rs:.3g}' if isinstance(rs, (int, float)) else '-':>9} "
            f"{age:>5.0f}s  {trace}"
        )
    if len(ranked) > limit:
        lines.append(f"... and {len(ranked) - limit} more")
    return lines


def cmd_top(args: argparse.Namespace) -> int:
    from .core import ReproError
    from .service import ServiceClient

    client = ServiceClient(args.url, timeout=args.timeout)

    def frame() -> List[str]:
        return _top_lines(client.healthz(), client.jobs(), args.url, args.limit)

    if args.once or not sys.stdout.isatty():
        # One snapshot through the logging tree (the CI/pipe shape).
        try:
            for line in frame():
                logger.info(line)
        except ReproError as exc:
            logger.error(f"{exc.code}: {exc}")
            return 2
        return 0
    # Live TTY mode repaints the screen in place; raw terminal control
    # is deliberately outside the logging tree (same rationale as the
    # progress heartbeat).
    try:
        while True:
            try:
                lines = frame()
            except ReproError as exc:
                lines = [f"{args.url}: {exc.code}: {exc}"]
            sys.stdout.write("\x1b[H\x1b[2J")  # home + clear
            sys.stdout.write("\n".join(lines) + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    from .core import ReproError, SimplifyOutcome
    from .service import ServiceClient

    client = ServiceClient(args.url, timeout=args.timeout)
    try:
        if args.job_id is None:
            jobs = client.jobs()
            if args.format == "json":
                logger.info(json.dumps(jobs, indent=2, sort_keys=True))
                return 0
            if not jobs:
                logger.info("no jobs")
            for j in jobs:
                flags = "".join(
                    tag for tag, on in (
                        (" cached", j.get("cached")),
                        (" dedup", j.get("deduplicated")),
                    ) if on
                )
                logger.info(f"{j['job_id']}  {j['state']:<9} {j['circuit']}"
                            f"  attempts={j['attempts']}{flags}")
            return 0
        if args.cancel:
            snap = client.cancel(args.job_id)
            logger.info(f"{snap['job_id']}: {snap['state']}"
                        f" (cancel_requested={snap['cancel_requested']})")
            return 0
        if args.result:
            text = client.result_json(args.job_id)
            if args.format == "json":
                logger.info(text.rstrip("\n"))
            else:
                logger.info(SimplifyOutcome.from_json(text).report())
            return 0
        snap = client.status(args.job_id)
        if args.format == "json":
            logger.info(json.dumps(snap, indent=2, sort_keys=True))
        else:
            logger.info(f"{snap['job_id']}: {snap['state']} "
                        f"({snap['circuit']}, attempts={snap['attempts']})")
            progress = snap.get("progress")
            if progress:
                logger.info(
                    f"  iteration {progress.get('iteration')}  "
                    f"area {progress.get('area_start')}->{progress.get('area')}  "
                    f"RS {progress.get('rs'):.4g}/"
                    f"{(progress.get('rs_threshold') or 0):.4g}"
                )
            err = snap.get("error")
            if err:
                logger.info(f"  error: {err.get('code')}: {err.get('message')}")
    except ReproError as exc:
        logger.error(f"{exc.code}: {exc}")
        return 2
    return 0


def cmd_errors(args: argparse.Namespace) -> int:
    from .core import ReproError
    from .obs.flight import cluster_errors, render_error_clusters, scan_job_errors

    source = args.source
    if "://" in source:
        from .service import ServiceClient

        try:
            body = ServiceClient(source, timeout=args.timeout).errors(
                limit=args.limit
            )
        except ReproError as exc:
            logger.error(f"{exc.code}: {exc}")
            return 2
    elif os.path.isdir(source):
        # Offline mode: a service data dir (jobs/ + logs/) or a bare
        # jobs dir.  Torn bundles surface as `unreadable` clusters,
        # never as tracebacks.
        jobs_dir = source
        if os.path.isdir(os.path.join(source, "jobs")):
            jobs_dir = os.path.join(source, "jobs")
        records = scan_job_errors(jobs_dir)
        body = {
            "clusters": cluster_errors(records, limit=args.limit),
            "errors_total": len(records),
        }
        events_path = os.path.join(source, "logs", "events.jsonl")
        from .service.slog import log_segments, read_log_records

        if log_segments(events_path):
            body["hung_attempts"] = sum(
                1
                for record in read_log_records(events_path)
                if record.get("kind") == "attempt"
                and record.get("outcome") == "hung"
            )
    elif os.path.isfile(source):
        try:
            with open(source, "r", encoding="utf-8") as fh:
                body = json.load(fh)
        except (OSError, ValueError) as exc:
            logger.error(f"cannot read error scrape {source}: {exc}")
            return 2
        if not isinstance(body, dict) or "clusters" not in body:
            logger.error(f"{source}: not a saved /v1/errors scrape "
                         f"(no 'clusters' key)")
            return 2
    else:
        logger.error(f"{source}: not a URL, directory, or file")
        return 2
    if args.format == "json":
        logger.info(json.dumps(body, indent=2, sort_keys=True))
    else:
        logger.info(render_error_clusters(body))
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(body, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            logger.error(f"cannot write {args.output}: {exc}")
            return 2
        logger.info(f"error summary written to {args.output}")
    return 0


def cmd_postmortem(args: argparse.Namespace) -> int:
    from .obs.flight import load_bundle, render_postmortem

    try:
        bundle = load_bundle(args.path)
    except (OSError, ValueError) as exc:
        logger.error(f"cannot load crash bundle: {exc}")
        return 2
    report = render_postmortem(bundle)
    logger.info(report)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(report)
                fh.write("\n")
        except OSError as exc:
            logger.error(f"cannot write {args.output}: {exc}")
            return 2
        logger.info(f"postmortem written to {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ATPG-driven circuit simplification for error tolerant "
                    "applications (Shin & Gupta, DATE 2011 reproduction)",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="debug-level logging")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the stdout payload; warnings/errors only")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="netlist statistics")
    p.add_argument("netlist")
    p.add_argument("--weights", choices=["unit", "binary"], default="binary")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("simplify", help="RS-budgeted simplification")
    p.add_argument("netlist")
    p.add_argument("-o", "--output", default=None, help="write .bench here")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="journal every committed step here; rerunning with "
                        "the same path resumes a killed run bit-identically")
    _add_greedy_options(p)
    _add_obs_options(p)
    _add_live_obs_options(p)
    p.set_defaults(func=cmd_simplify)

    p = sub.add_parser("report", help="profiling view over a run journal")
    p.add_argument("journal", help="journal JSONL path from --journal")
    p.add_argument("--top", type=int, default=12,
                   help="counters to show in the hotspot table (default 12)")
    p.add_argument("--format", choices=["text", "json", "openmetrics"],
                   default="text",
                   help="render as human text (default), machine JSON, or "
                        "OpenMetrics/Prometheus text exposition")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("profile",
                       help="self-time attribution over a run journal "
                            "(exclusive span times, wall-clock coverage, "
                            "kernel throughput, RSS timeline, worker "
                            "utilization)")
    p.add_argument("journal", help="journal JSONL path from --journal")
    p.add_argument("--top", type=int, default=12,
                   help="span rows in the self-time table (default 12)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--fail-on-unattributed", action="store_true",
                   help="exit 3 when top-level spans explain less than "
                        "90%% of the run's wall time")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("compare",
                       help="diff two run journals iteration-by-iteration")
    p.add_argument("journal_a", help="baseline run journal (A)")
    p.add_argument("journal_b", help="candidate run journal (B)")
    p.add_argument("--top", type=int, default=12,
                   help="rows in the phase-time/counter delta tables")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--fail-on-divergence", action="store_true",
                   help="exit 3 when the trajectories are not identical")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("audit",
                       help="estimator-calibration / RS-budget audit of a "
                            "run journal")
    p.add_argument("journal", help="journal JSONL path from --journal/--checkpoint")
    p.add_argument("--exact", action="store_true",
                   help="replay the journal and cross-check the final ER "
                        "against the BDD engine (small circuits; needs "
                        "--netlist)")
    p.add_argument("--netlist", default=None, metavar="PATH",
                   help="the original netlist the journaled run started from "
                        "(required by --exact)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="also write the audit as JSON here")
    p.add_argument("--z", type=float, default=1.96,
                   help="normal quantile for the confidence level "
                        "(default 1.96 = 95%%)")
    p.add_argument("--node-limit", type=int, default=500_000,
                   help="BDD node budget for --exact (default 500000)")
    p.add_argument("--weights", choices=["unit", "binary"], default="binary")
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("trends",
                       help="append BENCH_*.json rows to a history file and "
                            "flag regressions vs the trailing median")
    p.add_argument("bench", nargs="+", help="BENCH_<name>.json snapshot(s)")
    p.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                   help="JSONL history file (default BENCH_history.jsonl)")
    p.add_argument("--threshold", type=float, default=15.0, metavar="PCT",
                   help="regression threshold in percent (default 15)")
    p.add_argument("--window", type=int, default=5,
                   help="trailing history entries per median (default 5)")
    p.add_argument("--no-append", action="store_true",
                   help="only check; do not record the new rows")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="exit 3 when any metric regresses (CI wraps this "
                        "in a soft-fail step)")
    p.set_defaults(func=cmd_trends)

    p = sub.add_parser("redundancy", help="classical redundancy removal")
    p.add_argument("netlist")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--weights", choices=["unit", "binary"], default="binary")
    p.set_defaults(func=cmd_redundancy)

    p = sub.add_parser("table2", help="Table II row on a built-in benchmark")
    p.add_argument("circuit", choices=["c880", "c1908", "c3540", "c5315", "c7552"])
    _add_greedy_options(p)
    _add_obs_options(p)
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser("dct-study", help="Section II JPEG/DCT study")
    p.add_argument("--size", type=int, default=256, help="test image edge length")
    p.set_defaults(func=cmd_dct_study)

    p = sub.add_parser("er-tests", help="error-rate test generation (ERTG)")
    p.add_argument("netlist")
    p.add_argument("--er", type=float, default=0.0,
                   help="test only faults with ER above this (default 0: all)")
    p.add_argument("--candidates", type=int, default=2048)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default=None, help="write vectors here")
    p.add_argument("--weights", choices=["unit", "binary"], default="binary")
    p.set_defaults(func=cmd_er_tests)

    p = sub.add_parser("yield", help="effective-yield analysis on a defect population")
    p.add_argument("netlist")
    p.add_argument("--chips", type=int, default=300)
    p.add_argument("--density", type=float, default=0.8,
                   help="expected defects per chip (Poisson lambda)")
    p.add_argument("--rs", type=float, default=None, help="absolute RS budget")
    p.add_argument("--rs-pct", type=float, default=None, help="RS budget in %% of RS_max")
    p.add_argument("--vectors", type=int, default=5000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--weights", choices=["unit", "binary"], default="binary")
    p.set_defaults(func=cmd_yield)

    p = sub.add_parser("serve", help="run the simplification job server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent job runner processes (default 2)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="pending-job bound; further submits get HTTP 429")
    p.add_argument("--max-retries", type=int, default=3,
                   help="attempts per job before a crashed run is failed "
                        "(each retry resumes from the job's checkpoint)")
    p.add_argument("--data-dir", default=".repro-service", metavar="DIR",
                   help="durable state: job dirs, result cache, netlists")
    p.add_argument("--hang-timeout", type=float, default=0.0, metavar="S",
                   help="kill a running attempt whose journal/progress "
                        "stops advancing for S seconds (after a SIGUSR1 "
                        "stack dump) and requeue it; 0 disables (default)")
    p.add_argument("--log-max-bytes", type=int, default=0, metavar="N",
                   help="rotate logs/access.jsonl and logs/events.jsonl "
                        "at N bytes; 0 means unbounded (default)")
    p.add_argument("--log-keep", type=int, default=3, metavar="K",
                   help="rotated .1..K segments kept per log (default 3)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit a netlist to a job server")
    p.add_argument("netlist")
    p.add_argument("--url", default="http://127.0.0.1:8765",
                   help="job server base URL (default http://127.0.0.1:8765)")
    _add_greedy_options(p)
    p.add_argument("--wait", action="store_true",
                   help="poll until the job finishes and print the report")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="--wait limit in seconds (default 600)")
    p.add_argument("--poll-interval", type=float, default=0.5)
    p.add_argument("--trace-id", default=None, metavar="ID",
                   help="correlation id stamped through the job's whole "
                        "lifetime (API responses, service logs, runner "
                        "journal, /trace); a uuid is generated if omitted")
    p.add_argument("-o", "--output", default=None,
                   help="with --wait: write the simplified netlist here")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs", help="list/inspect/cancel jobs on a server")
    p.add_argument("job_id", nargs="?", default=None,
                   help="a job id (omit to list all jobs)")
    p.add_argument("--url", default="http://127.0.0.1:8765")
    p.add_argument("--result", action="store_true",
                   help="fetch the finished job's outcome")
    p.add_argument("--cancel", action="store_true",
                   help="request cancellation of the job")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request HTTP timeout in seconds (default 30)")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("slo",
                       help="latency quantiles + CI gates from OpenMetrics "
                            "histograms")
    p.add_argument("source",
                   help="a job server base URL (http://...) or a saved "
                        "OpenMetrics exposition file")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="also write the summary as JSON here")
    p.add_argument("--fail-over", action="append", default=[],
                   metavar="METRIC_pPCT=SECONDS",
                   help="exit 3 when the quantile exceeds the bound, e.g. "
                        "--fail-over e2e_p99=2.5 (substring-matches the "
                        "histogram family name; repeatable)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request HTTP timeout in seconds (default 30)")
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser("top", help="live fleet view of a running job server")
    p.add_argument("--url", default="http://127.0.0.1:8765")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes (default 2)")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (also the automatic "
                        "behaviour when stdout is not a terminal)")
    p.add_argument("--limit", type=int, default=20,
                   help="job rows to show (default 20)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request HTTP timeout in seconds (default 30)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("errors",
                       help="fleet error-fingerprint clusters (live server, "
                            "service data dir, or saved scrape)")
    p.add_argument("source",
                   help="a job server base URL (http://...), a service "
                        "data dir (or bare jobs dir), or a saved "
                        "/v1/errors JSON scrape")
    p.add_argument("--limit", type=int, default=10,
                   help="clusters to show (default 10)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="also write the summary as JSON here")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request HTTP timeout in seconds (default 30)")
    p.set_defaults(func=cmd_errors)

    p = sub.add_parser("postmortem",
                       help="render a crash bundle (or a bare run journal) "
                            "as a human-readable report")
    p.add_argument("path",
                   help="a job dir, its crash/ bundle dir, or a run "
                        "journal .jsonl")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="also write the report here (CI artifact)")
    p.set_defaults(func=cmd_postmortem)

    args = parser.parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
