"""Live heartbeat over a running simplification: TTY line + progress.json.

A :class:`ProgressReporter` is a journal *sink*: it exposes the same
``emit(event)`` surface as :class:`~repro.obs.journal.RunJournal`, so
the greedy loop fans the one event stream out to it alongside the
journal and checkpoint files -- no second instrumentation channel, and
the progress view can never disagree with what the journal recorded.

Two outputs, both optional:

* **TTY line** -- a single ``\\r``-rewritten stderr line per committed
  step: iteration index, committed faults, area trajectory, RS budget
  used, and an ETA.  The ETA comes from an EWMA over the per-iteration
  phase times (the journal's ``phase_times``) combined with an EWMA of
  the RS consumed per step: remaining budget / RS-per-step gives the
  expected remaining steps, times seconds-per-step gives seconds.
  Early iterations are cheap and consume little budget, so the EWMA
  (alpha 0.3) tracks the expensive tail rather than the optimistic
  head.  The line is only produced when a stream is given -- the CLI
  passes stderr exactly when it is a TTY and ``--quiet`` is not set,
  which is what keeps ``--quiet`` genuinely silent;
* **progress.json** -- a machine-readable snapshot written atomically
  (tmp file + :func:`os.replace`, so a monitor never reads a torn
  JSON) at most once per ``interval_s`` seconds, plus once at run start
  and once at completion.  External monitors poll this file; a resumed
  run (checkpoint) simply starts overwriting it again;
* **telemetry.prom** -- an OpenMetrics rendering
  (:mod:`repro.obs.metrics_export`) refreshed atomically alongside
  every snapshot write, so a node-exporter-style textfile collector
  can scrape a live run.  Counters and phase times accumulate from the
  per-iteration deltas (the summary snapshot, when it arrives, is
  authoritative and replaces them); gauges fold in the journal's
  ``telemetry`` samples.  The reporter aggregates from the event
  stream rather than peeking at any ``Instrumentation`` object because
  a ``--progress``-only run builds its registry privately inside the
  greedy loop -- the events are the only channel that always exists.

The telemetry monitor emits from a background thread while the greedy
loop emits from the main thread, so ``emit``/``close`` serialize under
an internal lock (same contract as
:class:`~repro.obs.journal.RunJournal`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, IO, Optional, Tuple, Union

__all__ = ["ProgressReporter"]

_EWMA_ALPHA = 0.3


class ProgressReporter:
    """Journal-event-driven heartbeat (see module docstring).

    Parameters
    ----------
    stream:
        Writable text stream for the live line (``None`` disables it).
    json_path:
        Path for the atomic machine-readable snapshot (``None``
        disables it).
    interval_s:
        Minimum seconds between two snapshot writes (events arriving
        faster are coalesced; run start/end always write).
    prom_path:
        Path for the OpenMetrics text rendering refreshed with every
        snapshot write (``None`` disables it).
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        json_path: Optional[Union[str, os.PathLike]] = None,
        interval_s: float = 2.0,
        prom_path: Optional[Union[str, os.PathLike]] = None,
    ) -> None:
        self.stream = stream
        self.json_path = os.fspath(json_path) if json_path is not None else None
        self.prom_path = os.fspath(prom_path) if prom_path is not None else None
        self.interval_s = float(interval_s)
        self.writes = 0
        self._last_write = float("-inf")
        self._line_open = False
        self._lock = threading.Lock()
        self._reset()

    def _reset(self) -> None:
        self.circuit: Optional[str] = None
        self.area_start: Optional[int] = None
        self.area: Optional[int] = None
        self.rs = 0.0
        self.rs_threshold: Optional[float] = None
        self.iteration = -1
        self.faults_committed = 0
        self.status = "running"
        self.rss_peak_bytes = 0
        self._t_start = time.monotonic()
        self._ewma_step_s: Optional[float] = None
        self._ewma_step_rs: Optional[float] = None
        self._prev_rs = 0.0
        # OpenMetrics accumulators: per-iteration deltas until the
        # authoritative summary snapshot replaces them.
        self._timers: Dict[str, Tuple[float, int]] = {}
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # sink interface (mirrors RunJournal.emit)
    # ------------------------------------------------------------------
    def emit(self, event: Dict) -> None:
        with self._lock:
            self._handle(event)

    def _handle(self, event: Dict) -> None:
        etype = event.get("event")
        if etype == "run_start":
            self._reset()
            self.circuit = event.get("circuit")
            self.area_start = self.area = event.get("area")
            self.rs_threshold = event.get("rs_threshold")
            self._refresh(force=True)
        elif etype == "resume":
            self.circuit = event.get("circuit", self.circuit)
            self.area = event.get("area", self.area)
            if self.area_start is None:
                self.area_start = self.area
            self.rs = self._prev_rs = float(event.get("rs") or 0.0)
            self.faults_committed = int(event.get("replayed_iterations") or 0)
            self._refresh(force=True)
        elif etype == "iteration":
            self.iteration = event.get("index", self.iteration + 1)
            self.faults_committed += 1
            if self.area_start is None:
                self.area_start = event.get("area_before")
            self.area = event.get("area_after", self.area)
            self.rs = float(event.get("rs") or 0.0)
            step_s = sum((event.get("phase_times") or {}).values())
            step_rs = max(self.rs - self._prev_rs, 0.0)
            self._prev_rs = self.rs
            self._ewma_step_s = _ewma(self._ewma_step_s, step_s)
            self._ewma_step_rs = _ewma(self._ewma_step_rs, step_rs)
            for phase, secs in (event.get("phase_times") or {}).items():
                total, count = self._timers.get(phase, (0.0, 0))
                self._timers[phase] = (total + float(secs), count + 1)
            for name, n in (event.get("counters") or {}).items():
                self._counters[name] = self._counters.get(name, 0) + n
            self._refresh()
        elif etype == "telemetry":
            rss = int(event.get("rss_bytes") or 0)
            self.rss_peak_bytes = max(self.rss_peak_bytes, rss)
            self._gauges["telemetry.rss_peak_bytes"] = self.rss_peak_bytes
            if event.get("lane") == "coordinator":
                self._gauges["telemetry.rss_bytes"] = rss
                self._gauges["telemetry.cpu_s"] = float(event.get("cpu_s") or 0.0)
                for name, rate in (event.get("gauges") or {}).items():
                    self._gauges[f"telemetry.{name}"] = rate
            self._refresh()
        elif etype == "summary":
            self.status = "complete"
            self.area = event.get("area_after", self.area)
            if event.get("timers"):
                self._timers = {
                    path: (float(stat["total_s"]), int(stat["count"]))
                    for path, stat in event["timers"].items()
                }
            if event.get("counters"):
                self._counters = dict(event["counters"])
            for name, value in (event.get("gauges") or {}).items():
                self._gauges.setdefault(name, value)
            self._refresh(force=True)

    def close(self) -> None:
        """Finish the live line (newline) and flush a final snapshot."""
        with self._lock:
            if self.status == "running":
                self.status = "interrupted"
            self._write_json()
            if self.stream is not None and self._line_open:
                try:
                    self.stream.write("\n")
                    self.stream.flush()
                except (OSError, ValueError):
                    pass
                self._line_open = False

    # ------------------------------------------------------------------
    # derived readings
    # ------------------------------------------------------------------
    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._t_start

    @property
    def area_reduction_pct(self) -> Optional[float]:
        if not self.area_start or self.area is None:
            return None
        return 100.0 * (self.area_start - self.area) / self.area_start

    @property
    def rs_budget_used_pct(self) -> Optional[float]:
        if not self.rs_threshold:
            return None
        return 100.0 * self.rs / self.rs_threshold

    def eta_s(self) -> Optional[float]:
        """Expected remaining seconds; ``None`` before any signal."""
        if self.status != "running" or self.rs_threshold is None:
            return None
        if not self._ewma_step_s or not self._ewma_step_rs:
            return None
        remaining = max(self.rs_threshold - self.rs, 0.0)
        steps_left = remaining / self._ewma_step_rs
        return steps_left * self._ewma_step_s

    def snapshot(self) -> Dict:
        """The machine-readable progress payload."""
        return {
            "status": self.status,
            "circuit": self.circuit,
            "iteration": self.iteration,
            "faults_committed": self.faults_committed,
            "area_start": self.area_start,
            "area": self.area,
            "area_reduction_pct": self.area_reduction_pct,
            "rs": self.rs,
            "rs_threshold": self.rs_threshold,
            "rs_budget_used_pct": self.rs_budget_used_pct,
            "elapsed_s": self.elapsed_s,
            "step_time_ewma_s": self._ewma_step_s,
            "eta_s": self.eta_s(),
            "rss_peak_bytes": self.rss_peak_bytes,
            "updated_unix": time.time(),
        }

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _refresh(self, force: bool = False) -> None:
        now = time.monotonic()
        if force or now - self._last_write >= self.interval_s:
            self._last_write = now
            self._write_json()
        self._write_line()

    def _write_json(self) -> None:
        self._write_prom()
        if self.json_path is None:
            return
        tmp = f"{self.json_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.json_path)
        self.writes += 1

    def _write_prom(self) -> None:
        if self.prom_path is None:
            return
        from .metrics_export import render_openmetrics

        gauges = dict(self._gauges)
        gauges["run.iterations"] = self.faults_committed
        if self.area is not None:
            gauges["run.area"] = self.area
        if self.area_reduction_pct is not None:
            gauges["run.area_reduction_pct"] = self.area_reduction_pct
        gauges["run.rs"] = self.rs
        if self.rs_threshold is not None:
            gauges["run.rs_threshold"] = self.rs_threshold
        gauges["run.elapsed_s"] = self.elapsed_s
        text = render_openmetrics(
            {
                "timers": self._timers,
                "counters": self._counters,
                "gauges": gauges,
            },
            info={"circuit": self.circuit, "status": self.status},
        )
        tmp = f"{self.prom_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, self.prom_path)

    def _write_line(self) -> None:
        if self.stream is None:
            return
        parts = [f"[{self.circuit or '?'}]"]
        if self.status == "running":
            parts.append(f"iter {max(self.iteration, 0)}")
        else:
            parts.append(self.status)
        parts.append(f"faults {self.faults_committed}")
        if self.area is not None and self.area_start:
            parts.append(
                f"area {self.area_start}->{self.area} "
                f"(-{self.area_reduction_pct:.1f}%)"
            )
        if self.rs_threshold:
            parts.append(
                f"RS {self.rs:.4g}/{self.rs_threshold:.4g} "
                f"({self.rs_budget_used_pct:.0f}%)"
            )
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"ETA {_fmt_eta(eta)}")
        line = "  ".join(parts)
        try:
            self.stream.write("\r" + line.ljust(78))
            self.stream.flush()
        except (OSError, ValueError):
            return
        self._line_open = True


def _ewma(previous: Optional[float], value: float) -> float:
    if previous is None:
        return value
    return previous + _EWMA_ALPHA * (value - previous)


def _fmt_eta(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    return f"{seconds // 60}m{seconds % 60:02d}s"
