"""OpenMetrics/Prometheus text rendering of instrumentation state.

The future job server needs a scrape endpoint; this module is its
payload, available today from three places:

* ``repro report RUN.jsonl --format openmetrics`` renders a finished
  (or interrupted) journal;
* the live heartbeat drops ``telemetry.prom`` next to ``progress.json``
  on every snapshot write (:class:`~repro.obs.progress.ProgressReporter`);
* :func:`render_openmetrics` renders any
  :meth:`~repro.obs.core.Instrumentation.snapshot` directly.

Mapping (all metric names prefixed ``repro_``, dots sanitized to
underscores):

* counters -> one ``counter`` family each, sample ``<name>_total``;
* gauges   -> one ``gauge`` family each;
* latency histograms (:class:`~repro.obs.slo.LatencyHistogram`) -> one
  ``histogram`` family each: cumulative ``_bucket{le="..."}`` samples
  ending at ``le="+Inf"``, plus ``_count`` and ``_sum``;
* span timers -> two label-indexed counter families,
  ``repro_phase_seconds_total{phase="..."}`` and
  ``repro_phase_calls_total{phase="..."}``;
* run identity -> an ``info`` family,
  ``repro_run_info{circuit="...",status="..."} 1``.

:func:`validate_openmetrics` is a small grammar checker for the
OpenMetrics text exposition format (metric-name charset, ``# TYPE``
before samples, suffix rules per type, one family declaration each,
the mandatory ``# EOF`` terminator).  The unit tests run every
rendered payload through it, so the scrape surface stays parseable.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "render_openmetrics",
    "journal_openmetrics",
    "validate_openmetrics",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: sample-name suffixes a family of each type may expose.
_TYPE_SUFFIXES = {
    "counter": ("_total", "_created"),
    "gauge": ("",),
    "info": ("_info",),
    "histogram": ("_bucket", "_count", "_sum", "_created"),
    "unknown": ("",),
}


def _metric_name(raw: str, prefix: str = "repro_") -> str:
    name = _SANITIZE.sub("_", raw)
    if not re.match(r"[a-zA-Z_:]", name):
        name = "_" + name
    return prefix + name


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    f = float(value)
    if math.isnan(f):
        return "NaN"
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _labels(pairs: Dict[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(pairs.items())
    )
    return "{" + inner + "}"


def render_openmetrics(
    snapshot: Dict,
    info: Optional[Dict[str, str]] = None,
) -> str:
    """Render an instrumentation snapshot as OpenMetrics text.

    ``snapshot`` is the :meth:`Instrumentation.snapshot` shape
    (``timers``/``counters``/``gauges``/``histograms``, any subset);
    ``info`` adds a
    ``repro_run_info`` identity family (circuit, status, ...).  The
    output always terminates with ``# EOF`` and passes
    :func:`validate_openmetrics`.
    """
    lines: List[str] = []
    if info:
        clean = {k: v for k, v in info.items() if v is not None}
        if clean:
            lines.append("# TYPE repro_run info")
            lines.append(f"repro_run_info{_labels(clean)} 1")

    counters = snapshot.get("counters") or {}
    for raw in sorted(counters):
        name = _metric_name(raw)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}_total {_fmt_value(counters[raw])}")

    gauges = snapshot.get("gauges") or {}
    for raw in sorted(gauges):
        name = _metric_name(raw, prefix="repro_gauge_")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt_value(gauges[raw])}")

    # Histograms arrive either as LatencyHistogram objects (a live
    # Instrumentation snapshot embeds them pre-snapshotted) or as their
    # cumulative-bucket dict form; both expose the same keys.
    histograms = snapshot.get("histograms") or {}
    for raw in sorted(histograms):
        data = histograms[raw]
        if hasattr(data, "snapshot"):
            data = data.snapshot()
        name = _metric_name(raw)
        lines.append(f"# TYPE {name} histogram")
        for bound, cumulative in data.get("buckets") or ():
            lines.append(
                f'{name}_bucket{{le="{_fmt_value(float(bound))}"}} '
                f"{_fmt_value(cumulative)}"
            )
        lines.append(f"{name}_count {_fmt_value(data.get('count', 0))}")
        lines.append(f"{name}_sum {_fmt_value(data.get('sum', 0.0))}")

    timers = snapshot.get("timers") or {}
    if timers:
        seconds: List[Tuple[str, float]] = []
        calls: List[Tuple[str, int]] = []
        for path in sorted(timers):
            stat = timers[path]
            if isinstance(stat, dict):
                total, count = stat.get("total_s", 0.0), stat.get("count", 0)
            else:  # the (total, count) tuple collect_timers produces
                total, count = stat
            seconds.append((path, float(total)))
            calls.append((path, int(count)))
        lines.append("# TYPE repro_phase_seconds counter")
        lines.extend(
            f'repro_phase_seconds_total{{phase="{_escape_label(p)}"}} '
            f"{_fmt_value(t)}"
            for p, t in seconds
        )
        lines.append("# TYPE repro_phase_calls counter")
        lines.extend(
            f'repro_phase_calls_total{{phase="{_escape_label(p)}"}} '
            f"{_fmt_value(c)}"
            for p, c in calls
        )

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def journal_openmetrics(events: Sequence[Dict]) -> str:
    """Render one journal event stream as OpenMetrics text.

    Shares the aggregation layer with ``repro report``
    (:func:`~repro.obs.report.collect_timers` /
    ``collect_counters`` / ``collect_gauges``), and folds the
    journal's ``telemetry`` samples into peak-RSS / final-CPU gauges
    so an interrupted run (no summary snapshot) still exposes its
    resource readings.
    """
    from .report import collect_counters, collect_gauges, collect_timers

    header = next((e for e in events if e.get("event") == "run_start"), None)
    summary = next((e for e in events if e.get("event") == "summary"), None)
    gauges = dict(collect_gauges(events))
    telemetry = [e for e in events if e.get("event") == "telemetry"]
    if telemetry:
        gauges.setdefault(
            "telemetry.rss_peak_bytes",
            max(e.get("rss_bytes", 0) for e in telemetry),
        )
        coord = [e for e in telemetry if e.get("lane") == "coordinator"]
        if coord:
            gauges.setdefault("telemetry.cpu_s", coord[-1].get("cpu_s", 0.0))

    iterations = sum(1 for e in events if e.get("event") == "iteration")
    gauges.setdefault("run.iterations", iterations)
    if summary is not None:
        if summary.get("area_reduction_pct") is not None:
            gauges.setdefault(
                "run.area_reduction_pct", summary["area_reduction_pct"]
            )
        if summary.get("elapsed_s") is not None:
            gauges.setdefault("run.elapsed_s", summary["elapsed_s"])
        if summary.get("final_rs") is not None:
            gauges.setdefault("run.final_rs", summary["final_rs"])

    info = {
        "circuit": header.get("circuit") if header else None,
        "status": "complete" if summary is not None else "interrupted",
        "version": str(header.get("version")) if header else None,
    }
    snapshot = {
        "timers": collect_timers(events),
        "counters": collect_counters(events),
        "gauges": gauges,
    }
    return render_openmetrics(snapshot, info=info)


# ----------------------------------------------------------------------
# grammar validation (used by the unit tests and safe for CI gating)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>\S+))?$"
)
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)
_VALUE_RE = re.compile(
    r"^(?:[+-]?(?:\d+(?:\.\d+)?|\.\d+)(?:[eE][+-]?\d+)?|[+-]?Inf|NaN)$"
)


def validate_openmetrics(text: str) -> int:
    """Check ``text`` against the OpenMetrics text grammar.

    Returns the number of sample lines; raises :class:`ValueError`
    naming the first offending line.  Checked: the ``# EOF``
    terminator (present, final, unique), metric-name and label
    charsets, numeric sample values, ``# TYPE`` declared before a
    family's samples, each family declared once, and per-type sample
    suffix rules (``counter`` samples end ``_total``/``_created``,
    ``info`` samples ``_info``, ``gauge`` samples are bare).
    """
    if not text.endswith("\n"):
        raise ValueError("exposition must end with a newline")
    lines = text.split("\n")[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition must terminate with '# EOF'")
    declared: Dict[str, str] = {}
    samples = 0
    for lineno, line in enumerate(lines, start=1):
        if line == "# EOF":
            if lineno != len(lines):
                raise ValueError(f"line {lineno}: content after '# EOF'")
            continue
        if not line:
            raise ValueError(f"line {lineno}: blank line")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#" or parts[1] not in (
                "TYPE", "HELP", "UNIT"
            ):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            family = parts[2]
            if not _NAME_OK.match(family):
                raise ValueError(
                    f"line {lineno}: bad metric family name {family!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "info", "histogram", "summary",
                    "stateset", "unknown", "gaugehistogram",
                ):
                    raise ValueError(
                        f"line {lineno}: bad TYPE line {line!r}"
                    )
                if family in declared:
                    raise ValueError(
                        f"line {lineno}: family {family!r} declared twice"
                    )
                declared[family] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = m.group("name")
        if not _VALUE_RE.match(m.group("value")):
            raise ValueError(
                f"line {lineno}: bad sample value {m.group('value')!r}"
            )
        labels = m.group("labels")
        if labels is not None:
            body = labels[1:-1]
            if body:
                consumed = _LABEL_RE.sub("", body)
                if consumed.strip(","):
                    raise ValueError(
                        f"line {lineno}: malformed label set {labels!r}"
                    )
        family = _family_of(name, declared)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding TYPE "
                f"declaration"
            )
        samples += 1
    return samples


def _family_of(sample_name: str, declared: Dict[str, str]) -> Optional[str]:
    """The declared family a sample name belongs to (suffix rules)."""
    for family, mtype in declared.items():
        for suffix in _TYPE_SUFFIXES.get(mtype, ("",)):
            if sample_name == family + suffix:
                return family
    return None
