"""Chrome-trace export of span activity: ``repro simplify --trace out.json``.

A :class:`TraceRecorder` attached to an
:class:`~repro.obs.core.Instrumentation` (``obs.tracer = recorder``)
turns every span into one *trace event*: the span's hierarchical path,
its begin/end wall-clock instants, and an explicit parent id derived
from the recorder's open-span stack (spans are context managers, so
they close strictly LIFO and the stack *is* the parent chain).

Events live in two coordinate systems:

* **in process**, timestamps are raw :func:`time.perf_counter` readings
  -- on Linux a system-wide monotonic clock, so readings taken in the
  scoring worker processes are directly comparable to the
  coordinator's.  Worker-side recorders
  (:mod:`repro.parallel.pool`) drain their event buffers into each
  shard result; the coordinator merges them with :meth:`add_remote`
  in shard order, which makes the merged stream deterministic for a
  fixed shard-to-worker assignment;
* **on export**, :func:`to_chrome_trace` rebases everything against the
  coordinator recorder's epoch and renders the Chrome trace event
  format (the ``traceEvents`` array of ``"ph": "X"`` complete events
  that ``chrome://tracing``, Perfetto and catapult load directly).
  Each OS process becomes one pid lane with a ``process_name`` metadata
  record -- the coordinator plus one ``scoring worker N`` lane per
  worker pid -- so phase-2 shard parallelism and stragglers are visible
  as parallel tracks.

Span ids are namespaced by pid (``"<pid>:<n>"``), so merged worker
events can never collide with coordinator ids.

Besides spans, a recorder carries **counter events** (``add_counter``):
sampled series -- RSS, CPU, throughput rates from
:mod:`repro.obs.telemetry` -- exported as Chrome-trace counter records
(``"ph": "C"``), which Perfetto renders as one counter track per
``(pid, name)`` under that pid's span lane.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "SpanEvent",
    "CounterEvent",
    "TraceRecorder",
    "chrome_trace_from_spans",
    "to_chrome_trace",
    "write_chrome_trace",
]

#: One completed span: (span id, parent id or None, hierarchical path,
#: begin perf_counter, end perf_counter, recording pid).  A plain tuple
#: so worker buffers pickle compactly.
SpanEvent = Tuple[int, Optional[int], str, float, float, int]

#: One sampled counter reading: (track name, perf_counter instant,
#: value, recording pid).
CounterEvent = Tuple[str, float, float, int]


class TraceRecorder:
    """Per-process buffer of completed span events.

    One recorder belongs to one process (``pid``); remote events merged
    with :meth:`add_remote` keep the pid they were recorded under.  The
    ``epoch`` -- the coordinator's construction instant -- is the zero
    point of the exported timeline.
    """

    def __init__(self, pid: Optional[int] = None) -> None:
        self.pid = os.getpid() if pid is None else int(pid)
        self.epoch = time.perf_counter()
        self.events: List[SpanEvent] = []
        self.counter_events: List[CounterEvent] = []
        self._open: List[Tuple[int, Optional[int]]] = []  # (id, parent)
        self._next_id = 0

    # -- recording (called from the span fast path) --------------------
    def begin(self, path: str) -> None:
        """Open a span: assign its id, remember its parent."""
        parent = self._open[-1][0] if self._open else None
        self._open.append((self._next_id, parent))
        self._next_id += 1

    def end(self, path: str, t0: float, t1: float) -> None:
        """Close the innermost open span into a completed event."""
        span_id, parent = self._open.pop()
        self.events.append((span_id, parent, path, t0, t1, self.pid))

    def add_counter(
        self, name: str, instant: float, value: float, pid: Optional[int] = None
    ) -> None:
        """Record one sampled counter reading (a ``"ph": "C"`` track
        point on export).  ``pid`` defaults to this recorder's lane;
        the telemetry monitor passes worker pids for shipped samples."""
        self.counter_events.append(
            (name, float(instant), float(value), self.pid if pid is None else int(pid))
        )

    # -- merging --------------------------------------------------------
    def drain(self) -> List[SpanEvent]:
        """Hand over (and clear) the completed-event buffer.

        The worker side of the shard protocol: completed events ship
        back with each shard result, so a worker that scores many
        shards never re-sends old events.
        """
        events, self.events = self.events, []
        return events

    def add_remote(self, events: Iterable[SpanEvent]) -> None:
        """Merge a drained worker buffer (events keep their worker pid)."""
        self.events.extend(tuple(ev) for ev in events)


def to_chrome_trace(recorder: TraceRecorder) -> Dict:
    """Render a recorder's events as a Chrome trace-format object.

    Every span becomes a complete (``"ph": "X"``) slice with
    microsecond timestamps relative to the recorder's epoch; ``args``
    carries the full span path and the explicit ``id``/``parent`` pair
    (ids namespaced ``"<pid>:<n>"``).  Sampled counter readings become
    ``"ph": "C"`` records -- Perfetto draws one counter track per
    ``(pid, name)``.  Lanes: the coordinator pid first, then worker
    pids in ascending order, each named by a ``process_name`` metadata
    record.
    """
    pids = sorted(
        {ev[5] for ev in recorder.events}
        | {ev[3] for ev in recorder.counter_events}
    )
    if recorder.pid in pids:  # coordinator lane leads
        pids.remove(recorder.pid)
        pids.insert(0, recorder.pid)
    lane_names = {}
    worker_no = 0
    for pid in pids:
        if pid == recorder.pid:
            lane_names[pid] = "repro coordinator"
        else:
            worker_no += 1
            lane_names[pid] = f"scoring worker {worker_no}"

    trace_events: List[Dict] = []
    for pid in pids:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": lane_names[pid]},
            }
        )
    # Deterministic export order: lane by lane, each lane in recording
    # order (begin-time order within a lane, since spans close LIFO and
    # are appended on close -- re-sorted by t0 for the nesting readers).
    for pid in pids:
        lane = [ev for ev in recorder.events if ev[5] == pid]
        lane.sort(key=lambda ev: (ev[3], -(ev[4] - ev[3]), ev[0]))
        for span_id, parent, path, t0, t1, _pid in lane:
            trace_events.append(
                {
                    "name": path.rsplit("/", 1)[-1],
                    "cat": "span",
                    "ph": "X",
                    "ts": (t0 - recorder.epoch) * 1e6,
                    "dur": (t1 - t0) * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "path": path,
                        "id": f"{pid}:{span_id}",
                        "parent": None if parent is None else f"{pid}:{parent}",
                    },
                }
            )
    for pid in pids:
        track = [ev for ev in recorder.counter_events if ev[3] == pid]
        track.sort(key=lambda ev: (ev[0], ev[1]))
        for name, instant, value, _pid in track:
            trace_events.append(
                {
                    "name": name,
                    "cat": "telemetry",
                    "ph": "C",
                    "ts": (instant - recorder.epoch) * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": value},
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def chrome_trace_from_spans(
    spans: Iterable[Dict],
    counters: Iterable[Dict] = (),
    lane_names: Optional[Dict[int, str]] = None,
    metadata: Optional[Dict] = None,
) -> Dict:
    """Build a Chrome trace object from explicit span/counter dicts.

    The generic sibling of :func:`to_chrome_trace` for callers that
    synthesize a timeline rather than record one -- the job server's
    ``GET /v1/jobs/<id>/trace`` assembles queue-wait and attempt spans
    from service-side timestamps and runner spans from the job's
    journal, all on one shared zero-based clock.

    * ``spans``: ``{"pid", "name", "t0_s", "t1_s", "args"?}`` -- one
      complete (``"ph": "X"``) slice each, times in seconds;
    * ``counters``: ``{"pid", "name", "t_s", "value"}`` -- sampled
      ``"ph": "C"`` track points;
    * ``lane_names``: ``{pid: label}`` rendered as ``process_name``
      metadata records;
    * ``metadata``: extra args attached to every lane's metadata record
      (e.g. the trace id).
    """
    spans = list(spans)
    counters = list(counters)
    lane_names = dict(lane_names or {})
    pids = sorted(
        {s["pid"] for s in spans}
        | {c["pid"] for c in counters}
        | set(lane_names)
    )
    trace_events: List[Dict] = []
    for pid in pids:
        args: Dict = {"name": lane_names.get(pid, f"lane {pid}")}
        if metadata:
            args.update(metadata)
        trace_events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "args": args}
        )
    for span in sorted(spans, key=lambda s: (s["pid"], s["t0_s"])):
        trace_events.append(
            {
                "name": span["name"],
                "cat": "span",
                "ph": "X",
                "ts": span["t0_s"] * 1e6,
                "dur": max(span["t1_s"] - span["t0_s"], 0.0) * 1e6,
                "pid": span["pid"],
                "tid": 0,
                "args": dict(span.get("args") or {}),
            }
        )
    for point in sorted(counters, key=lambda c: (c["pid"], c["name"], c["t_s"])):
        trace_events.append(
            {
                "name": point["name"],
                "cat": "telemetry",
                "ph": "C",
                "ts": point["t_s"] * 1e6,
                "pid": point["pid"],
                "tid": 0,
                "args": {"value": point["value"]},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, os.PathLike], recorder: TraceRecorder
) -> int:
    """Write the Chrome trace JSON for ``recorder``; returns the number
    of span events exported."""
    payload = to_chrome_trace(recorder)
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.write("\n")
    return sum(1 for ev in payload["traceEvents"] if ev.get("ph") == "X")
