"""Background resource telemetry: sampled RSS, CPU and throughput lanes.

A :class:`TelemetryMonitor` is a daemon sampling thread attached to one
:class:`~repro.obs.core.Instrumentation` registry
(``obs.telemetry = monitor``).  On a configurable interval -- plus once
at start and once at stop, so even sub-interval runs record a usable
series -- it reads, with stdlib primitives only:

* **RSS bytes** from ``/proc/self/statm`` (pages x page size), falling
  back to ``resource.getrusage(...).ru_maxrss`` where procfs is absent
  (that fallback reports the process-lifetime *peak*, which is still a
  correct high-watermark);
* **CPU seconds** from ``os.times()`` (user + system of this process);
* **throughput gauges** derived from counter deltas between samples:
  ``patterns_per_s`` (vectors through the good/fault simulators),
  ``faults_per_s`` (candidate faults scored, local batch + remote
  shards) and ``candidates_per_s`` (shortlist entries ranked by the
  greedy loop).

Each sample lands in three places at once: the instrumentation gauges
(``telemetry.rss_bytes``, high-watermark ``telemetry.rss_peak_bytes``,
and one gauge per rate -- so the journal summary and ``repro report``
see the final readings), a journal-v4 ``telemetry`` event emitted
through the run's sink tee (so ``repro profile`` can render the RSS
timeline of a dead run from its journal alone), and -- when a
:class:`~repro.obs.trace.TraceRecorder` is attached -- Chrome-trace
counter tracks (``"ph": "C"``), so Perfetto draws RSS/throughput under
the existing span lanes.

Worker processes do not run monitor threads: :mod:`repro.parallel.pool`
samples once per scored shard (:func:`worker_sample`) and ships the
samples back with the shard result; :meth:`TelemetryMonitor.add_worker_samples`
merges them into per-worker lanes (``lane="worker-<pid>"``), keyed by
pid in the trace.  ``perf_counter`` is a system-wide monotonic clock on
Linux, so worker instants rebase onto the coordinator epoch directly.

The monitor emits journal events from its thread while the greedy loop
emits from the main thread; :class:`~repro.obs.journal.RunJournal` and
:class:`~repro.obs.progress.ProgressReporter` serialize concurrent
emitters internally, so the sink tee needs no extra locking here.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "TelemetryMonitor",
    "WorkerSample",
    "cpu_seconds",
    "sample_rss_bytes",
    "worker_sample",
]

#: One worker-side reading: (pid, perf_counter instant, RSS bytes,
#: cumulative CPU seconds).  A plain tuple so shard results pickle
#: compactly, mirroring :data:`repro.obs.trace.SpanEvent`.
WorkerSample = Tuple[int, float, int, float]

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover - non-POSIX
    _PAGE_SIZE = 4096


def sample_rss_bytes() -> int:
    """Current resident-set size of this process in bytes.

    ``/proc/self/statm`` field 1 is resident pages; where procfs is
    unavailable the ``ru_maxrss`` fallback reports the lifetime peak
    (kilobytes on Linux), and a platform with neither reads 0 rather
    than failing the run.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except Exception:  # pragma: no cover - resource always importable on POSIX
        return 0


def peak_rss_bytes() -> int:
    """Process-lifetime peak RSS in bytes (``ru_maxrss``; 0 if unknown)."""
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except Exception:  # pragma: no cover
        return 0


def cpu_seconds() -> float:
    """Cumulative CPU seconds (user + system) of this process."""
    t = os.times()
    return t.user + t.system


def worker_sample() -> WorkerSample:
    """One telemetry reading of the calling (worker) process."""
    return (os.getpid(), time.perf_counter(), sample_rss_bytes(), cpu_seconds())


#: rate gauge -> the monotonic counters whose summed delta feeds it.
#: The fault-rate pair is disjoint by construction: serial scoring
#: increments ``batchsim.faults_evaluated`` in-process, pool scoring
#: increments ``parallel.faults_scored_remote`` on the coordinator
#: (the workers' batchsim counters live in other processes).
THROUGHPUT_SOURCES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    (
        "patterns_per_s",
        ("estimator.vectors_simulated", "faultsim.vectors_simulated"),
    ),
    (
        "faults_per_s",
        ("batchsim.faults_evaluated", "parallel.faults_scored_remote"),
    ),
    ("candidates_per_s", ("greedy.candidates_scored",)),
)


class TelemetryMonitor:
    """Interval sampler feeding gauges, journal events and trace counters.

    Parameters
    ----------
    obs:
        The instrumentation registry to read counters from and record
        gauges into (also consulted for an attached tracer).
    sink:
        Anything with ``emit(event)`` -- usually the greedy loop's
        journal tee; ``None`` keeps the samples in ``self.samples``
        (and the gauges/trace) only.
    interval_s:
        Seconds between samples (clamped to >= 10 ms).
    trace_id:
        Optional correlation id stamped into every emitted telemetry
        event (coordinator and worker lanes), linking the samples to
        the service submission that started this run.
    """

    def __init__(
        self,
        obs,
        sink=None,
        interval_s: float = 1.0,
        trace_id: Optional[str] = None,
    ) -> None:
        self.obs = obs
        self.sink = sink
        self.trace_id = trace_id
        self.interval_s = max(float(interval_s), 0.01)
        self.pid = os.getpid()
        self.samples: List[Dict] = []
        self.epoch: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._prev_t: Optional[float] = None
        self._prev_counters: Dict[str, int] = {}
        self._worker_cursor: Dict[int, Tuple[float, float]] = {}

    # ------------------------------------------------------------------
    def start(self) -> "TelemetryMonitor":
        """Take the first sample and launch the daemon sampling thread."""
        if self._thread is not None:
            return self
        self.epoch = time.perf_counter()
        self._stop.clear()
        self.sample()
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one final sample (so short runs
        still record a start/end pair)."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=max(5.0, 4 * self.interval_s))
            self._thread = None
        if self.epoch is not None:
            self.sample()

    def __enter__(self) -> "TelemetryMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample()
            except Exception:  # pragma: no cover - never kill the run
                self.obs.incr("telemetry.sample_errors")

    # ------------------------------------------------------------------
    def sample(self) -> Dict:
        """Take one coordinator sample; record, journal and trace it."""
        now = time.perf_counter()
        rss = sample_rss_bytes()
        cpu = cpu_seconds()
        with self._lock:
            if self.epoch is None:
                self.epoch = now
            t_s = now - self.epoch
            counters = dict(self.obs.counters)
            rates = self._rates(t_s, counters)
            self._prev_t = t_s
            self._prev_counters = counters
            event = {
                "event": "telemetry",
                "t_s": round(t_s, 6),
                "pid": self.pid,
                "lane": "coordinator",
                "rss_bytes": rss,
                "cpu_s": round(cpu, 6),
                "gauges": rates,
            }
            if self.trace_id is not None:
                event["trace_id"] = self.trace_id
            self.samples.append(event)
            self.obs.gauge("telemetry.rss_bytes", rss)
            self.obs.gauge_max("telemetry.rss_peak_bytes", rss)
            self.obs.gauge("telemetry.cpu_s", cpu)
            self.obs.gauge_max("telemetry.samples", len(self.samples))
            for name, rate in rates.items():
                self.obs.gauge(f"telemetry.{name}", rate)
            tracer = self.obs.tracer
            if tracer is not None:
                tracer.add_counter("rss_mb", now, rss / 1e6, self.pid)
                for name, rate in rates.items():
                    tracer.add_counter(name, now, rate, self.pid)
            if self.sink is not None:
                self.sink.emit(event)
        return event

    def _rates(self, t_s: float, counters: Dict[str, int]) -> Dict[str, float]:
        """Throughput gauges from counter deltas since the last sample."""
        rates: Dict[str, float] = {}
        if self._prev_t is None:
            return {name: 0.0 for name, _src in THROUGHPUT_SOURCES}
        dt = t_s - self._prev_t
        if dt <= 0:
            return {name: 0.0 for name, _src in THROUGHPUT_SOURCES}
        for name, sources in THROUGHPUT_SOURCES:
            delta = sum(
                counters.get(c, 0) - self._prev_counters.get(c, 0)
                for c in sources
            )
            rates[name] = round(delta / dt, 3)
        return rates

    # ------------------------------------------------------------------
    def add_worker_samples(self, samples: Iterable[WorkerSample]) -> int:
        """Merge shard-shipped worker readings into per-worker lanes.

        Each reading becomes one journal ``telemetry`` event
        (``lane="worker-<pid>"``), a worker utilization gauge (CPU
        seconds over wall seconds between that worker's consecutive
        readings), and -- when tracing -- counter tracks on the
        worker's existing trace lane.  Returns the number merged.
        """
        merged = 0
        with self._lock:
            epoch = self.epoch if self.epoch is not None else time.perf_counter()
            tracer = self.obs.tracer
            for pid, instant, rss, cpu in samples:
                t_s = instant - epoch
                lane = f"worker-{pid}"
                event = {
                    "event": "telemetry",
                    "t_s": round(t_s, 6),
                    "pid": int(pid),
                    "lane": lane,
                    "rss_bytes": int(rss),
                    "cpu_s": round(float(cpu), 6),
                }
                if self.trace_id is not None:
                    event["trace_id"] = self.trace_id
                previous = self._worker_cursor.get(pid)
                if previous is not None:
                    dt = t_s - previous[0]
                    dcpu = cpu - previous[1]
                    if dt > 0:
                        event["utilization"] = round(min(dcpu / dt, 1.0), 4)
                self._worker_cursor[pid] = (t_s, float(cpu))
                self.samples.append(event)
                self.obs.gauge_max("telemetry.worker_rss_peak_bytes", int(rss))
                if tracer is not None:
                    tracer.add_counter("rss_mb", instant, rss / 1e6, pid)
                if self.sink is not None:
                    self.sink.emit(event)
                merged += 1
        return merged
