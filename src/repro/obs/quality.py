"""Quality observability: estimator calibration and RS-budget auditing.

The greedy loop commits irreversible fault injections on *estimates* --
sampled parallel-pattern ER, lower-bounded ES from the threshold ATPG.
This module makes the accuracy of those estimates a first-class,
inspectable artifact of every run:

* :func:`wilson_interval` -- the Wilson-score confidence interval for a
  binomial proportion, used for every sampled ER estimate in the
  pipeline (``DifferentialResult`` / ``FaultBatchStats`` /
  ``ErrorMetrics`` all expose an ``er_confidence`` built on it).  The
  Wilson interval stays well-behaved at the extremes the naive normal
  interval gets wrong: ``k=0`` gives a nonzero upper bound (the rule of
  three), ``k=n`` a sub-1 lower bound, and the interval always contains
  the point estimate;
* :func:`calibration_event` -- the journal v3 ``calibration`` event:
  for each committed iteration, the *predicted* ER/ES/area deltas the
  candidate ranking saw at selection time next to the *realized* values
  the commit measurement produced, plus the ER confidence interval and
  the **budget-risk** flag.  An iteration is budget-risk when its RS
  point estimate satisfied the threshold but the CI upper bound does
  not: ``rs <= rs_threshold < er_ci_hi * es``.  Exact (exhaustive-
  batch) ER estimates carry a zero-width interval and can never be
  budget-risk;
* :func:`audit_events` / :func:`render_audit` / :func:`audit_file` --
  the ``repro audit`` view: full per-iteration provenance (FOM at
  selection, predicted vs. realized deltas, cumulative RS with its CI
  band), with v2 journals degrading gracefully (no predicted columns;
  CI and budget risk are recomputed from the journaled ER and batch
  size);
* :func:`exact_er_check` -- the ``--exact`` cross-check: replay the
  journaled faults through the Overlay engine and compare the final ER
  against the BDD engine's exact value; agreement means the exact ER
  falls within the reported confidence interval.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_Z",
    "wilson_interval",
    "calibration_event",
    "audit_events",
    "audit_file",
    "render_audit",
    "exact_er_check",
]

#: Two-sided 95% normal quantile -- the default confidence level for
#: every ER interval in the pipeline.
DEFAULT_Z = 1.96


def wilson_interval(k: int, n: int, z: float = DEFAULT_Z) -> Tuple[float, float]:
    """Wilson-score confidence interval for a binomial proportion.

    ``k`` successes in ``n`` trials; returns ``(lo, hi)``.  ``n == 0``
    is total ignorance: ``(0.0, 1.0)``.  The interval always contains
    the point estimate ``k/n`` and is clamped to ``[0, 1]``.
    """
    if n <= 0:
        return (0.0, 1.0)
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k} n={n}")
    p = k / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    spread = z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    # At the boundaries the closed form is exact (lo = 0 at k = 0,
    # hi = 1 at k = n); pin them against float rounding.
    lo = 0.0 if k == 0 else max(0.0, center - spread)
    hi = 1.0 if k == n else min(1.0, center + spread)
    return (lo, hi)


def er_interval(
    er: float, num_vectors: int, z: float = DEFAULT_Z, exact: bool = False
) -> Tuple[float, float]:
    """Confidence interval for a sampled ER estimate.

    ``exact=True`` (exhaustive batch: the estimate has no sampling
    error) returns the zero-width interval ``(er, er)``.  Otherwise the
    detection count is recovered from the rate and the batch size and
    fed to :func:`wilson_interval`.
    """
    if exact:
        return (er, er)
    if num_vectors <= 0:
        return (0.0, 1.0)
    return wilson_interval(int(round(er * num_vectors)), num_vectors, z=z)


# ----------------------------------------------------------------------
# journal v3 calibration events
# ----------------------------------------------------------------------
def calibration_event(
    index: int,
    fault: str,
    metrics,
    area_delta: int,
    rs_threshold: float,
    predicted: Optional[Dict] = None,
    exact: bool = False,
    z: float = DEFAULT_Z,
) -> Dict:
    """Build one journal v3 ``calibration`` event for a committed step.

    ``metrics`` is the step's realized :class:`~repro.metrics.errors.
    ErrorMetrics`; ``predicted`` carries the candidate ranking's
    selection-time view (``er``/``es``/``area_delta``/``fom``) or
    ``None`` for steps that were never ranked (prepass injections are
    PODEM-proven free, i.e. predicted zeros).
    """
    ci_lo, ci_hi = er_interval(metrics.er, metrics.num_vectors, z=z, exact=exact)
    budget_risk = metrics.rs <= rs_threshold < ci_hi * metrics.es
    return {
        "event": "calibration",
        "index": index,
        "fault": fault,
        "predicted": predicted,
        "realized": {
            "er": metrics.er,
            "es": metrics.es,
            "observed_es": metrics.observed_es,
            "rs": metrics.rs,
            "area_delta": area_delta,
        },
        "num_vectors": metrics.num_vectors,
        "er_ci": [ci_lo, ci_hi],
        "rs_ci": [ci_lo * metrics.es, ci_hi * metrics.es],
        "rs_threshold": rs_threshold,
        "z": z,
        "budget_risk": budget_risk,
    }


# ----------------------------------------------------------------------
# audit: per-iteration provenance with CI bands
# ----------------------------------------------------------------------
def audit_events(events: Sequence[Dict], z: float = DEFAULT_Z) -> Dict:
    """Structured quality audit of one journal event stream.

    Joins each ``iteration`` event with its ``calibration`` event (v3)
    by journal order.  Pre-v3 journals have no calibration events; the
    predicted columns are then absent (``None``) while the confidence
    interval and the budget-risk flag are recomputed from the journaled
    ER, the run's batch size, and the ``exhaustive`` config flag -- the
    audit degrades, it does not refuse.
    """
    header = next((e for e in events if e.get("event") == "run_start"), None)
    summary = next((e for e in events if e.get("event") == "summary"), None)
    iterations = [e for e in events if e.get("event") == "iteration"]
    calibrations = {
        (e["index"], e["fault"]): e
        for e in events
        if e.get("event") == "calibration"
    }

    rs_threshold = float(header["rs_threshold"]) if header else float("inf")
    num_vectors = int(header["num_vectors"]) if header else 0
    exact = bool((header or {}).get("config", {}).get("exhaustive", False))
    version = (header or {}).get("version")

    rows: List[Dict] = []
    risk_count = 0
    for ev in iterations:
        cal = calibrations.get((ev["index"], ev["fault"]))
        if cal is not None:
            er_ci = tuple(cal["er_ci"])
            budget_risk = bool(cal["budget_risk"])
            predicted = cal.get("predicted")
            n = cal["num_vectors"]
        else:
            n = num_vectors
            er_ci = er_interval(float(ev["er"]), n, z=z, exact=exact)
            budget_risk = float(ev["rs"]) <= rs_threshold < er_ci[1] * ev["es"]
            predicted = None
        if budget_risk:
            risk_count += 1
        rows.append(
            {
                "index": ev["index"],
                "phase": ev["phase"],
                "fault": ev["fault"],
                "fom": ev.get("fom"),
                "predicted": predicted,
                "realized": {
                    "er": ev["er"],
                    "es": ev["es"],
                    "observed_es": ev["observed_es"],
                    "rs": ev["rs"],
                    "area_delta": ev["area_before"] - ev["area_after"],
                },
                "num_vectors": n,
                "er_ci": [er_ci[0], er_ci[1]],
                "rs_ci": [er_ci[0] * ev["es"], er_ci[1] * ev["es"]],
                "budget_risk": budget_risk,
                "calibrated": cal is not None,
            }
        )

    final: Dict = {"er": None, "es": None, "rs": None}
    if summary is not None and summary.get("final_er") is not None:
        final = {
            "er": summary["final_er"],
            "es": summary["final_es"],
            "rs": summary["final_rs"],
        }
    elif rows:
        last = rows[-1]["realized"]
        final = {"er": last["er"], "es": last["es"], "rs": last["rs"]}
    final_ci = (
        er_interval(float(final["er"]), num_vectors, z=z, exact=exact)
        if final["er"] is not None
        else None
    )

    return {
        "circuit": header.get("circuit") if header else None,
        "schema_version": version,
        "rs_threshold": rs_threshold if header else None,
        "num_vectors": num_vectors,
        "exact_batch": exact,
        "z": z,
        "complete": summary is not None,
        "iterations": rows,
        "budget_risk_count": risk_count,
        "final": final,
        "final_er_ci": list(final_ci) if final_ci is not None else None,
    }


def audit_file(path: Union[str, os.PathLike], z: float = DEFAULT_Z) -> Dict:
    """Load a journal file and audit it (see :func:`audit_events`)."""
    from .journal import JournalError, load_journal

    events = load_journal(path, skip_unknown=True)
    if not events:
        raise JournalError(f"{path}: empty journal")
    audit = audit_events(events, z=z)
    audit["path"] = os.fspath(path)
    return audit


def render_audit(audit: Dict) -> str:
    """Human-readable calibration table of one :func:`audit_events` result."""
    lines = ["=== quality audit ==="]
    batch = "exhaustive (exact ER)" if audit["exact_batch"] else "sampled"
    lines.append(
        f"circuit: {audit['circuit']}  vectors: {audit['num_vectors']} "
        f"({batch})  rs_threshold: {_g(audit['rs_threshold'])}  "
        f"z: {audit['z']:g}"
    )
    if audit["schema_version"] is not None and audit["schema_version"] < 3:
        lines.append(
            f"journal schema v{audit['schema_version']}: no calibration "
            f"events; predicted columns unavailable, CI recomputed from "
            f"the journaled ER"
        )
    rows = audit["iterations"]
    lines.append("")
    lines.append("=== calibration (predicted @ selection vs realized @ commit) ===")
    if not rows:
        lines.append("(no committed iterations)")
    else:
        fault_w = max(5, max(len(str(r["fault"])) for r in rows))
        lines.append(
            f"{'#':>3} {'ph':<3} {'fault':<{fault_w}} "
            f"{'pred_ER':>8} {'ER':>8} {'ER 95% CI':>19} "
            f"{'pred_ES':>8} {'ES':>8} {'p-dA':>4} {'-dA':>4} "
            f"{'RS':>10} {'RS_hi':>10} {'fom':>9} risk"
        )
        for r in rows:
            p = r["predicted"] or {}
            real = r["realized"]
            lines.append(
                f"{r['index']:>3} {r['phase'][:3]:<3} "
                f"{str(r['fault']):<{fault_w}} "
                f"{_f(p.get('er'), '8.4f')} {real['er']:>8.4f} "
                f"[{r['er_ci'][0]:8.5f},{r['er_ci'][1]:8.5f}] "
                f"{_f(p.get('es'), '8.4g')} {real['es']:>8.4g} "
                f"{_f(p.get('area_delta'), '4d')} {real['area_delta']:>4} "
                f"{real['rs']:>10.4g} {r['rs_ci'][1]:>10.4g} "
                f"{_f(r['fom'], '9.3g')} "
                f"{'RISK' if r['budget_risk'] else 'ok'}"
            )
    lines.append("")
    final = audit["final"]
    if final["er"] is not None:
        band = audit["final_er_ci"]
        lines.append(
            f"final: ER={final['er']:.6g} "
            f"(95% CI [{band[0]:.6g}, {band[1]:.6g}]) "
            f"ES={final['es']} RS={_g(final['rs'])} "
            f"of threshold {_g(audit['rs_threshold'])}"
        )
    risk = audit["budget_risk_count"]
    lines.append(
        f"budget-risk iterations: {risk} of {len(rows)}"
        + (" -- CI upper bound crosses the RS threshold" if risk else "")
    )
    exact = audit.get("exact")
    if exact is not None:
        verdict = "AGREES" if exact["agrees"] else "DISAGREES"
        lines.append(
            f"exact check: BDD ER={exact['exact_er']:.6g} vs journal "
            f"ER={exact['journal_er']:.6g} "
            f"(CI [{exact['ci'][0]:.6g}, {exact['ci'][1]:.6g}]) -> {verdict}"
        )
    return "\n".join(lines)


def _f(value, spec: str) -> str:
    """Fixed-width cell: a formatted number, or '-' for missing."""
    width = int(spec.split(".")[0].rstrip("dfg"))
    if value is None:
        return f"{'-':>{width}}"
    if spec.endswith("d"):
        value = int(value)
    return f"{value:>{spec}}"


def _g(value) -> str:
    return "n/a" if value is None else f"{value:.6g}"


# ----------------------------------------------------------------------
# --exact: BDD cross-check of the final ER
# ----------------------------------------------------------------------
def exact_er_check(
    circuit,
    journal_path: Union[str, os.PathLike],
    audit: Dict,
    node_limit: int = 500_000,
) -> Dict:
    """Cross-check the audited final ER against the BDD engine.

    Replays the journaled faults through the Overlay engine (validating
    the area trajectory, exactly like a checkpoint resume) and computes
    the exact ER of the rebuilt simplified netlist against ``circuit``
    via BDD model counting.  Agreement means the exact value lies within
    the audit's final ER confidence interval; exhaustive-batch runs have
    a zero-width interval, so agreement there means exact equality (to
    float tolerance).

    Raises :class:`repro.parallel.checkpoint.CheckpointError` when the
    journal cannot be replayed against ``circuit`` and
    :class:`repro.bdd.BddLimitExceeded` when the circuit's BDD exceeds
    ``node_limit`` -- the exact check is for circuits small enough to
    build.
    """
    from ..bdd import exact_error_rate
    from ..metrics.errors import rs_max
    from ..parallel.checkpoint import load_checkpoint, replay_checkpoint

    state = load_checkpoint(journal_path)
    replayed = replay_checkpoint(circuit, state, rs_max(circuit))
    exact = exact_error_rate(circuit, approx=replayed.current, node_limit=node_limit)

    journal_er = audit["final"]["er"]
    ci = audit["final_er_ci"] or [0.0, 1.0]
    tol = 1e-9 * max(1.0, abs(exact))
    agrees = ci[0] - tol <= exact <= ci[1] + tol
    return {
        "exact_er": exact,
        "journal_er": journal_er,
        "ci": list(ci),
        "agrees": agrees,
        "node_limit": node_limit,
    }
