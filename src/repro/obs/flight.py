"""Flight recorder + crash forensics (DESIGN.md §15).

The rest of the observability stack answers "what is the run doing?";
this module answers "why is it stuck or dead?".  Three pieces:

* :class:`FlightRecorder` -- a bounded ring buffer with the journal
  ``emit(event)`` surface, teed into the run's event stream.  It keeps
  the last N events in memory (the "flight recorder") and flushes them
  -- together with a ``faulthandler`` all-thread stack dump and the
  progress/telemetry snapshots -- as an atomic **crash bundle**
  (``crash/`` directory) from an installed ``sys.excepthook``.  It also
  registers ``SIGUSR1`` with ``faulthandler`` so an external watchdog
  can extract a stack dump from a wedged process (the C-level handler
  fires even when the GIL is held).
* :class:`StallWatchdog` -- an in-process thread that writes a
  ``stall`` bundle when the event stream stops advancing for longer
  than a deadline (N x the expected event interval), then re-arms when
  progress resumes.
* Fingerprinting + forensics readers -- :func:`normalize_traceback`
  collapses a Python traceback (or a faulthandler dump) to its stable
  shape so :func:`fingerprint_text` clusters "the same failure" across
  jobs and hosts; :func:`load_bundle` / :func:`render_postmortem` back
  ``repro postmortem`` and :func:`scan_job_errors` /
  :func:`cluster_errors` back ``repro errors`` and ``GET /v1/errors``.

Bundle layout (all files best-effort except ``crash.json``)::

    crash/
      crash.json          # kind, ts, pid, trace_id, fingerprint, error
      traceback.txt       # formatted exception (crash bundles)
      stacks.txt          # faulthandler dump of all threads
      stacks_signal.txt   # SIGUSR1-triggered dump, when one landed
      journal_tail.jsonl  # last N journal events from the ring
      progress.json       # last progress snapshot, verbatim copy
      telemetry.json      # instrumentation snapshot at flush time

The bundle directory is assembled in a sibling temp dir and published
with one rename, so a half-written bundle is never observable.
"""

from __future__ import annotations

import collections
import faulthandler
import hashlib
import json
import logging
import os
import re
import shutil
import signal
import sys
import threading
import time
import traceback
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .journal import load_journal

__all__ = [
    "BUNDLE_DIRNAME",
    "STACKS_FILENAME",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "StallWatchdog",
    "normalize_traceback",
    "error_fingerprint",
    "fingerprint_text",
    "fingerprint_key",
    "package_bundle",
    "job_dir_error_record",
    "scan_job_errors",
    "cluster_errors",
    "render_error_clusters",
    "load_bundle",
    "render_postmortem",
]

logger = logging.getLogger("repro.obs.flight")

#: Bundle directory name inside a job/run directory.
BUNDLE_DIRNAME = "crash"
#: Standing faulthandler target for SIGUSR1 dumps, next to the bundle.
STACKS_FILENAME = "stacks.txt"
#: Ring capacity: enough tail to see what the run was doing, small
#: enough that a bundle stays a few tens of KB.
DEFAULT_CAPACITY = 64


# ---------------------------------------------------------------------------
# fingerprinting
# ---------------------------------------------------------------------------

# Accepts both traceback frames (`File "x.py", line 3, in f`) and
# faulthandler frames (`File "x.py", line 3 in f`).
_FRAME_RE = re.compile(r'File "([^"]+)", line \d+,? in (\S+)')
_HEX_RE = re.compile(r"0x[0-9a-fA-F]+")
_DIGITS_RE = re.compile(r"\d+")


def normalize_traceback(text: str) -> str:
    """Collapse a traceback / stack dump to its stable, comparable shape.

    Normalization rules (the contract in DESIGN.md §15):

    * frames become ``<file-stem>:<function>``  -- line numbers, source
      lines and absolute paths are dropped (they move between releases
      and checkouts without the failure changing);
    * in the remaining non-frame lines (the exception line, thread
      headers), hex addresses become ``0xADDR`` and digit runs become
      ``#`` so ids, sizes and counts don't split clusters.
    """
    frames = []
    for match in _FRAME_RE.finditer(text):
        # Split on either separator: a bundle written on Windows must
        # fingerprint identically when clustered on a POSIX host.
        basename = re.split(r"[\\/]", match.group(1))[-1]
        stem = os.path.splitext(basename)[0]
        frames.append(f"{stem}:{match.group(2)}")
    tail = []
    for line in text.splitlines():
        if not line or line.startswith((" ", "\t")):
            continue
        if line.startswith("Traceback (most recent call"):
            continue
        # Digit-free placeholder first, so the digit collapse cannot
        # chew the address marker itself; restore the readable form.
        line = _HEX_RE.sub("HEXADDR", line)
        line = _DIGITS_RE.sub("#", line)
        line = line.replace("HEXADDR", "0xADDR")
        tail.append(line.strip())
    parts = []
    if frames:
        parts.append(" > ".join(frames))
    parts.extend(tail)
    return "\n".join(parts)


def fingerprint_text(text: str) -> str:
    """Cluster id for a traceback/stack-dump: hash of its normal form."""
    normalized = normalize_traceback(text or "")
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:16]


def fingerprint_key(*parts: str) -> str:
    """Cluster id for synthetic causes (``("signal", "SIGKILL")``).

    Hashes the parts verbatim -- no traceback normalization, so numeric
    exit codes are *not* collapsed into one cluster.
    """
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()[:16]


def error_fingerprint(exc_type, exc, tb) -> Tuple[str, str]:
    """``(fingerprint, formatted traceback)`` for one exception."""
    text = "".join(traceback.format_exception(exc_type, exc, tb))
    return fingerprint_text(text), text


# ---------------------------------------------------------------------------
# the in-process recorder
# ---------------------------------------------------------------------------


class FlightRecorder:
    """Bounded ring of recent journal events + crash-bundle flusher.

    Tee it into a run's event stream (it has the sink ``emit(event)``
    surface) and call :meth:`install` to arm the excepthook and the
    SIGUSR1 stack-dump handler.  Thread-safe; ``emit`` is O(1).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        trace_id: Optional[str] = None,
        obs=None,
    ) -> None:
        self.capacity = max(1, int(capacity))
        self.trace_id = trace_id
        #: Optional Instrumentation whose ``snapshot()`` lands in the
        #: bundle's telemetry.json.
        self.obs = obs
        self.events_seen = 0
        self.last_advance_unix = time.time()
        self._ring = collections.deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._bundle_lock = threading.Lock()
        self._bundle_dir: Optional[str] = None
        self._progress_path: Optional[str] = None
        self._stacks_path: Optional[str] = None
        self._stacks_fh = None
        self._signal_registered = False
        self._prev_excepthook = None

    # -- journal-sink surface ------------------------------------------
    def emit(self, event: Dict) -> None:
        with self._lock:
            self._ring.append(dict(event))
            self.events_seen += 1
            self.last_advance_unix = time.time()

    def tail(self) -> List[Dict]:
        with self._lock:
            return list(self._ring)

    def idle_seconds(self, now: Optional[float] = None) -> float:
        """Seconds since the last event reached the ring."""
        return (time.time() if now is None else now) - self.last_advance_unix

    # -- arming --------------------------------------------------------
    def install(
        self,
        bundle_dir: str,
        stacks_path: Optional[str] = None,
        progress_path: Optional[str] = None,
        excepthook: bool = True,
    ) -> None:
        """Arm crash capture for this process.

        ``bundle_dir`` is where :meth:`write_bundle` publishes;
        ``stacks_path`` (kept open for the process lifetime) becomes the
        ``faulthandler`` target for SIGUSR1, so an external watchdog's
        signal yields a stack dump even from a process wedged inside C
        code holding the GIL.
        """
        self._bundle_dir = os.path.abspath(bundle_dir)
        self._progress_path = progress_path
        sig = getattr(signal, "SIGUSR1", None)
        if stacks_path is not None and sig is not None:
            try:
                self._stacks_path = os.path.abspath(stacks_path)
                self._stacks_fh = open(self._stacks_path, "w", encoding="utf-8")
                faulthandler.register(sig, file=self._stacks_fh, all_threads=True)
                self._signal_registered = True
            except (OSError, RuntimeError, ValueError):  # pragma: no cover
                logger.debug("cannot arm SIGUSR1 stack dumps", exc_info=True)
        if excepthook:
            self._prev_excepthook = sys.excepthook
            sys.excepthook = self._excepthook

    def uninstall(self) -> None:
        if self._prev_excepthook is not None:
            sys.excepthook = self._prev_excepthook
            self._prev_excepthook = None
        if self._signal_registered:
            try:
                faulthandler.unregister(signal.SIGUSR1)
            except (RuntimeError, ValueError):  # pragma: no cover
                pass
            self._signal_registered = False
        if self._stacks_fh is not None:
            try:
                self._stacks_fh.close()
            except OSError:  # pragma: no cover
                pass
            self._stacks_fh = None

    def _excepthook(self, exc_type, exc, tb) -> None:
        try:
            self.write_bundle("crash", exc_info=(exc_type, exc, tb))
        except Exception:  # noqa: BLE001 - forensics must not mask the crash
            logger.debug("crash bundle write failed", exc_info=True)
        prev = self._prev_excepthook or sys.__excepthook__
        prev(exc_type, exc, tb)

    # -- flushing ------------------------------------------------------
    def write_bundle(
        self,
        kind: str,
        exc_info=None,
        note: Optional[str] = None,
    ) -> str:
        """Flush the recorder's state as an atomic ``crash/`` bundle.

        Returns the published bundle path.  ``kind`` is ``crash`` /
        ``stall`` / anything the caller wants to label the incident.
        """
        if self._bundle_dir is None:
            raise ValueError("FlightRecorder.install() was never called")
        with self._bundle_lock:
            tmp = f"{self._bundle_dir}.tmp.{os.getpid()}"
            shutil.rmtree(tmp, ignore_errors=True)
            os.makedirs(tmp)

            with open(os.path.join(tmp, STACKS_FILENAME), "w", encoding="utf-8") as fh:
                try:
                    faulthandler.dump_traceback(file=fh, all_threads=True)
                except (OSError, RuntimeError):  # pragma: no cover
                    fh.write("(stack dump unavailable)\n")
            _copy_if_exists(
                self._stacks_path, os.path.join(tmp, "stacks_signal.txt"),
                nonempty=True,
            )
            _copy_if_exists(self._progress_path, os.path.join(tmp, "progress.json"))

            with open(
                os.path.join(tmp, "journal_tail.jsonl"), "w", encoding="utf-8"
            ) as fh:
                for event in self.tail():
                    fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")

            if self.obs is not None:
                try:
                    with open(
                        os.path.join(tmp, "telemetry.json"), "w", encoding="utf-8"
                    ) as fh:
                        json.dump(
                            self.obs.snapshot(), fh, indent=2, sort_keys=True,
                            default=str,
                        )
                        fh.write("\n")
                except Exception:  # noqa: BLE001 - snapshot is best-effort
                    logger.debug("telemetry snapshot failed", exc_info=True)

            error = None
            if exc_info is not None:
                fingerprint, tb_text = error_fingerprint(*exc_info)
                with open(
                    os.path.join(tmp, "traceback.txt"), "w", encoding="utf-8"
                ) as fh:
                    fh.write(tb_text)
                error = {
                    "type": exc_info[0].__name__ if exc_info[0] else "Exception",
                    "message": str(exc_info[1]),
                }
                normalized = normalize_traceback(tb_text)
            else:
                # No exception: the stall/stack shape is the identity.
                with open(
                    os.path.join(tmp, STACKS_FILENAME), "r", encoding="utf-8"
                ) as fh:
                    stacks_text = fh.read()
                fingerprint = fingerprint_text(stacks_text)
                normalized = normalize_traceback(stacks_text)

            crash = {
                "kind": kind,
                "ts_unix": time.time(),
                "pid": os.getpid(),
                "python": sys.version.split()[0],
                "trace_id": self.trace_id,
                "fingerprint": fingerprint,
                "error": error,
                "normalized": normalized,
                "events_seen": self.events_seen,
                "note": note,
            }
            with open(os.path.join(tmp, "crash.json"), "w", encoding="utf-8") as fh:
                json.dump(crash, fh, indent=2, sort_keys=True)
                fh.write("\n")

            _publish_dir(tmp, self._bundle_dir)
            return self._bundle_dir


class StallWatchdog:
    """In-process stall detector over one :class:`FlightRecorder`.

    A daemon thread that writes a ``stall`` bundle when the recorder's
    event stream has not advanced for ``deadline_s`` (callers derive it
    as N x the expected event interval), fires ``on_stall(path)``, then
    re-arms once events flow again.  It never kills anything -- killing
    is the *supervisor's* call (see ``WorkerPool``); this thread's job
    is to save the evidence while the process is still alive.
    """

    def __init__(
        self,
        recorder: FlightRecorder,
        deadline_s: float,
        poll_s: float = 0.25,
        on_stall=None,
    ) -> None:
        if deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        self.recorder = recorder
        self.deadline_s = float(deadline_s)
        self.poll_s = float(poll_s)
        self.on_stall = on_stall
        self.stalls = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("watchdog already started")
        self._thread = threading.Thread(
            target=self._loop, name="repro-stall-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        fired = False
        while not self._stop.wait(self.poll_s):
            idle = self.recorder.idle_seconds()
            if idle < self.deadline_s:
                fired = False
                continue
            if fired:
                continue
            fired = True
            self.stalls += 1
            try:
                path = self.recorder.write_bundle(
                    "stall",
                    note=(
                        f"no journal events for {idle:.1f}s "
                        f"(deadline {self.deadline_s:g}s)"
                    ),
                )
            except Exception:  # noqa: BLE001 - watchdog must survive
                logger.debug("stall bundle write failed", exc_info=True)
                continue
            logger.warning("stall detected; bundle written to %s", path)
            if self.on_stall is not None:
                try:
                    self.on_stall(path)
                except Exception:  # noqa: BLE001
                    logger.debug("on_stall callback failed", exc_info=True)


# ---------------------------------------------------------------------------
# supervisor-side packaging (no live recorder: build from artifacts)
# ---------------------------------------------------------------------------


def package_bundle(
    job_dir: str,
    kind: str,
    fingerprint: str,
    error: Optional[Dict] = None,
    tail_events: Sequence[Dict] = (),
    stacks_text: Optional[str] = None,
    trace_id: Optional[str] = None,
    note: Optional[str] = None,
) -> str:
    """Assemble a crash bundle for ``job_dir`` from the outside.

    The supervisor's half of the story: after it SIGKILLs a hung child
    (which cannot run an excepthook) it packages whatever the job dir
    holds -- the SIGUSR1 stack dump, the journal tail, the last
    progress snapshot -- under the same ``crash/`` contract the
    in-process recorder publishes.  Overwrites an existing bundle.
    """
    job_dir = os.path.abspath(job_dir)
    bundle_dir = os.path.join(job_dir, BUNDLE_DIRNAME)
    tmp = f"{bundle_dir}.tmp.{os.getpid()}"
    shutil.rmtree(tmp, ignore_errors=True)
    os.makedirs(tmp)
    if stacks_text is None:
        stacks_text = _read_if_exists(os.path.join(job_dir, STACKS_FILENAME))
    if stacks_text:
        with open(os.path.join(tmp, STACKS_FILENAME), "w", encoding="utf-8") as fh:
            fh.write(stacks_text)
    _copy_if_exists(
        os.path.join(job_dir, "progress.json"), os.path.join(tmp, "progress.json")
    )
    with open(os.path.join(tmp, "journal_tail.jsonl"), "w", encoding="utf-8") as fh:
        for event in tail_events:
            fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
    crash = {
        "kind": kind,
        "ts_unix": time.time(),
        "pid": None,
        "trace_id": trace_id,
        "fingerprint": fingerprint,
        "error": error,
        "normalized": normalize_traceback(stacks_text) if stacks_text else None,
        "note": note,
    }
    with open(os.path.join(tmp, "crash.json"), "w", encoding="utf-8") as fh:
        json.dump(crash, fh, indent=2, sort_keys=True)
        fh.write("\n")
    _publish_dir(tmp, bundle_dir)
    return bundle_dir


def _copy_if_exists(src: Optional[str], dst: str, nonempty: bool = False) -> None:
    if not src or not os.path.isfile(src):
        return
    try:
        if nonempty and os.path.getsize(src) == 0:
            return
        shutil.copyfile(src, dst)
    except OSError:  # pragma: no cover - forensics is best-effort
        logger.debug("cannot copy %s into bundle", src, exc_info=True)


def _read_if_exists(path: str) -> Optional[str]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()
    except (OSError, UnicodeDecodeError):
        return None


def _publish_dir(tmp: str, final: str) -> None:
    """Publish a staged bundle dir with one rename."""
    if os.path.isdir(final):
        shutil.rmtree(final, ignore_errors=True)
    os.replace(tmp, final)


# ---------------------------------------------------------------------------
# fleet aggregation (``GET /v1/errors`` / ``repro errors``)
# ---------------------------------------------------------------------------


def job_dir_error_record(job_dir: str) -> Optional[Dict]:
    """One fingerprint record for a job directory, or ``None``.

    Prefers a crash bundle (richest identity); falls back to a typed
    ``error.json`` (fingerprinted by its stable code + normalized
    message).  An unreadable/torn artifact yields an ``unreadable``
    record rather than a traceback -- corrupt forensics are themselves
    a signal worth clustering.
    """
    crash_path = os.path.join(job_dir, BUNDLE_DIRNAME, "crash.json")
    if os.path.isfile(crash_path):
        try:
            with open(crash_path, "r", encoding="utf-8") as fh:
                crash = json.load(fh)
            if not isinstance(crash, dict):
                raise ValueError("crash.json is not an object")
            error = crash.get("error") or {}
            message = (
                error.get("message")
                or crash.get("note")
                or crash.get("kind")
                or "crash"
            )
            return {
                "fingerprint": crash.get("fingerprint") or "unknown",
                "kind": crash.get("kind") or "crash",
                "message": str(message),
                "ts_unix": float(crash.get("ts_unix") or _mtime(crash_path)),
                "trace_id": crash.get("trace_id"),
            }
        except (OSError, ValueError, TypeError):
            return {
                "fingerprint": fingerprint_key("unreadable", "crash.json"),
                "kind": "unreadable",
                "message": "crash bundle present but crash.json is unreadable",
                "ts_unix": _mtime(crash_path),
                "trace_id": None,
            }
    error_path = os.path.join(job_dir, "error.json")
    if os.path.isfile(error_path):
        try:
            with open(error_path, "r", encoding="utf-8") as fh:
                body = json.load(fh)
            err = (body or {}).get("error") or {}
            code = err.get("code") or "unknown"
            message = err.get("message") or ""
            return {
                "fingerprint": fingerprint_text(f"{code}: {message}"),
                "kind": "error",
                "message": f"{code}: {message}",
                "ts_unix": _mtime(error_path),
                "trace_id": None,
            }
        except (OSError, ValueError, TypeError, AttributeError):
            return {
                "fingerprint": fingerprint_key("unreadable", "error.json"),
                "kind": "unreadable",
                "message": "error.json is unreadable",
                "ts_unix": _mtime(error_path),
                "trace_id": None,
            }
    return None


def _mtime(path: str) -> float:
    try:
        return os.path.getmtime(path)
    except OSError:
        return 0.0


def scan_job_errors(jobs_dir: str) -> List[Dict]:
    """All error records under a jobs directory (offline fleet view)."""
    records: List[Dict] = []
    try:
        entries = sorted(os.listdir(jobs_dir))
    except OSError:
        return records
    for entry in entries:
        job_dir = os.path.join(jobs_dir, entry)
        if not os.path.isdir(job_dir):
            continue
        record = job_dir_error_record(job_dir)
        if record is not None:
            record.setdefault("job_id", entry)
            records.append(record)
    return records


def cluster_errors(records: Iterable[Dict], limit: int = 10) -> List[Dict]:
    """Group error records by fingerprint; top-``limit`` by count.

    Each cluster carries first/last seen timestamps, a sample message
    (from the most recent record), and up to a few sample trace/job
    ids -- enough to pivot from the fleet view into one job's bundle.
    """
    clusters: Dict[str, Dict] = {}
    for record in records:
        if not record:
            continue
        fingerprint = record.get("fingerprint") or "unknown"
        ts = float(record.get("ts_unix") or 0.0)
        cluster = clusters.get(fingerprint)
        if cluster is None:
            cluster = clusters[fingerprint] = {
                "fingerprint": fingerprint,
                "count": 0,
                "kind": record.get("kind") or "crash",
                "message": str(record.get("message") or ""),
                "first_seen_unix": ts,
                "last_seen_unix": ts,
                "trace_ids": [],
                "job_ids": [],
            }
        cluster["count"] += 1
        if ts and (not cluster["first_seen_unix"] or ts < cluster["first_seen_unix"]):
            cluster["first_seen_unix"] = ts
        if ts >= cluster["last_seen_unix"]:
            cluster["last_seen_unix"] = ts
            cluster["message"] = str(record.get("message") or cluster["message"])
            cluster["kind"] = record.get("kind") or cluster["kind"]
        trace_id = record.get("trace_id")
        if trace_id and trace_id not in cluster["trace_ids"] and len(cluster["trace_ids"]) < 3:
            cluster["trace_ids"].append(trace_id)
        job_id = record.get("job_id")
        if job_id and job_id not in cluster["job_ids"] and len(cluster["job_ids"]) < 5:
            cluster["job_ids"].append(job_id)
    ranked = sorted(
        clusters.values(),
        key=lambda c: (-c["count"], -c["last_seen_unix"], c["fingerprint"]),
    )
    return ranked[: max(0, int(limit))] if limit else ranked


def _fmt_ts(ts: float) -> str:
    if not ts:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))


def render_error_clusters(body: Dict) -> str:
    """Human table for an errors summary (live or saved scrape)."""
    clusters = body.get("clusters") or []
    lines = [
        f"{len(clusters)} error cluster(s), "
        f"{body.get('errors_total', sum(c.get('count', 0) for c in clusters))} "
        f"failing record(s)"
    ]
    if body.get("hung_attempts"):
        lines.append(f"watchdog-killed attempts in events log: {body['hung_attempts']}")
    if not clusters:
        lines.append("no errors recorded -- the fleet is clean")
        return "\n".join(lines)
    lines.append("")
    lines.append(
        f"{'FINGERPRINT':<18} {'COUNT':>5} {'KIND':<10} "
        f"{'LAST SEEN':<19}  MESSAGE"
    )
    for cluster in clusters:
        message = (cluster.get("message") or "").replace("\n", " ")
        if len(message) > 60:
            message = message[:57] + "..."
        lines.append(
            f"{cluster.get('fingerprint', '?'):<18} "
            f"{cluster.get('count', 0):>5} "
            f"{cluster.get('kind', '?'):<10} "
            f"{_fmt_ts(cluster.get('last_seen_unix', 0)):<19}  {message}"
        )
        samples = []
        if cluster.get("job_ids"):
            samples.append("jobs: " + ", ".join(cluster["job_ids"]))
        if cluster.get("trace_ids"):
            samples.append("traces: " + ", ".join(cluster["trace_ids"]))
        if samples:
            lines.append(" " * 4 + "; ".join(samples))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# postmortem rendering (``repro postmortem``)
# ---------------------------------------------------------------------------


def load_bundle(path: str) -> Dict:
    """Load a crash bundle for rendering.

    ``path`` may be a job/run directory (containing ``crash/``), the
    ``crash/`` directory itself, or a bare journal file (yielding a
    tail-only pseudo-bundle when no bundle was ever written).
    Raises ``ValueError``/``OSError`` with a readable message when
    there is nothing forensic at the path.
    """
    path = os.path.abspath(path)
    if os.path.isfile(path):
        try:
            events = load_journal(path, validate=False, skip_unknown=True)
        except ValueError as exc:
            raise ValueError(f"{path}: not a journal file ({exc})") from exc
        return {
            "source": path,
            "crash": None,
            "stacks": None,
            "stacks_signal": None,
            "traceback": None,
            "tail": events[-DEFAULT_CAPACITY:],
            "progress": None,
            "telemetry": None,
        }
    if not os.path.isdir(path):
        raise ValueError(f"{path}: no such file or directory")
    bundle_dir = path
    if not os.path.isfile(os.path.join(bundle_dir, "crash.json")):
        bundle_dir = os.path.join(path, BUNDLE_DIRNAME)
        if not os.path.isfile(os.path.join(bundle_dir, "crash.json")):
            raise ValueError(
                f"{path}: no crash bundle (expected crash/crash.json; "
                f"did the job actually fail?)"
            )
    with open(os.path.join(bundle_dir, "crash.json"), "r", encoding="utf-8") as fh:
        crash = json.load(fh)
    tail: List[Dict] = []
    tail_path = os.path.join(bundle_dir, "journal_tail.jsonl")
    if os.path.isfile(tail_path):
        with open(tail_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    tail.append(json.loads(line))
                except ValueError:
                    continue  # torn tail line
    progress = _load_json_if_exists(os.path.join(bundle_dir, "progress.json"))
    telemetry = _load_json_if_exists(os.path.join(bundle_dir, "telemetry.json"))
    return {
        "source": bundle_dir,
        "crash": crash,
        "stacks": _read_if_exists(os.path.join(bundle_dir, STACKS_FILENAME)),
        "stacks_signal": _read_if_exists(os.path.join(bundle_dir, "stacks_signal.txt")),
        "traceback": _read_if_exists(os.path.join(bundle_dir, "traceback.txt")),
        "tail": tail,
        "progress": progress,
        "telemetry": telemetry,
    }


def _load_json_if_exists(path: str) -> Optional[Dict]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        return data if isinstance(data, dict) else None
    except (OSError, ValueError):
        return None


def _compact_event(event: Dict) -> str:
    kind = event.get("event", "?")
    detail = []
    for key in ("index", "iteration", "fault", "area_after", "rs", "reason",
                "replayed", "rss_bytes", "circuit"):
        if key in event:
            value = event[key]
            if isinstance(value, float):
                value = f"{value:.4g}"
            detail.append(f"{key}={value}")
    return f"  {kind:<12} " + "  ".join(str(d) for d in detail)


def render_postmortem(bundle: Dict) -> str:
    """The human crash report ``repro postmortem`` prints."""
    lines: List[str] = [f"== repro postmortem: {bundle['source']} =="]
    crash = bundle.get("crash")
    if crash:
        lines.append(
            f"kind: {crash.get('kind', '?')}    "
            f"fingerprint: {crash.get('fingerprint', '?')}"
        )
        when = _fmt_ts(float(crash.get("ts_unix") or 0.0))
        pid = crash.get("pid")
        lines.append(f"when: {when}" + (f"    pid: {pid}" if pid else ""))
        if crash.get("trace_id"):
            lines.append(f"trace_id: {crash['trace_id']}")
        if crash.get("note"):
            lines.append(f"note: {crash['note']}")
        error = crash.get("error")
        if error:
            lines.append(f"error: {error.get('type', '?')}: {error.get('message', '')}")
    else:
        lines.append("no crash bundle -- journal tail only")
    progress = bundle.get("progress")
    if progress:
        lines.append("")
        lines.append("-- last progress snapshot --")
        for key in ("status", "circuit", "iteration", "faults_committed",
                    "area", "rs", "eta_s"):
            if key in progress:
                lines.append(f"  {key}: {progress[key]}")
    tail = bundle.get("tail") or []
    lines.append("")
    lines.append(f"-- journal tail ({len(tail)} event(s)) --")
    for event in tail:
        lines.append(_compact_event(event))
    if not tail:
        lines.append("  (empty)")
    traceback_text = bundle.get("traceback")
    if traceback_text:
        lines.append("")
        lines.append("-- traceback --")
        lines.append(traceback_text.rstrip("\n"))
    stacks = bundle.get("stacks")
    if stacks:
        lines.append("")
        lines.append("-- stack dump (all threads) --")
        lines.append(stacks.rstrip("\n"))
    stacks_signal = bundle.get("stacks_signal")
    if stacks_signal:
        lines.append("")
        lines.append("-- stack dump at watchdog signal --")
        lines.append(stacks_signal.rstrip("\n"))
    return "\n".join(lines)
