"""Profiling view over a run journal: ``repro report <journal.jsonl>``.

Renders three sections from the JSONL event stream of one run:

* **phase-time breakdown** -- the hierarchical span timers from the
  summary snapshot, one row per span path with total/share/count/mean.
  For interrupted runs (no summary event) the per-iteration
  ``phase_times`` are aggregated instead, so a readable journal prefix
  still profiles;
* **iteration table** -- fault, area trajectory, ER/ES/RS and deltas
  per committed step;
* **top-k hotspot counters** -- the largest monotonic counters
  (vectors simulated, cache hits/misses, ATPG backtracks, ...).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Union

from .journal import JournalError, load_journal

__all__ = ["render_report", "report_from_file", "render_snapshot"]


def render_snapshot(snapshot: Dict, top_k: int = 12) -> str:
    """Render phase times + counters straight from an
    :meth:`~repro.obs.core.Instrumentation.snapshot` (the ``--profile``
    view, no journal needed)."""
    pseudo_summary = {
        "timers": snapshot.get("timers", {}),
        "counters": snapshot.get("counters", {}),
    }
    lines = _render_phase_times([], pseudo_summary)
    lines.append("")
    lines.extend(_render_counters([], pseudo_summary, top_k))
    return "\n".join(lines)


def report_from_file(
    path: Union[str, os.PathLike], top_k: int = 12
) -> str:
    """Load a journal file and render the profiling report."""
    events = load_journal(path)
    if not events:
        raise JournalError(f"{path}: empty journal")
    return render_report(events, top_k=top_k)


def render_report(events: Sequence[Dict], top_k: int = 12) -> str:
    """Render the report from already-parsed journal events."""
    header = next((e for e in events if e.get("event") == "run_start"), None)
    iterations = [e for e in events if e.get("event") == "iteration"]
    summary = next((e for e in events if e.get("event") == "summary"), None)

    out: List[str] = []
    out.extend(_render_header(header, iterations, summary))
    out.append("")
    out.extend(_render_phase_times(iterations, summary))
    out.append("")
    out.extend(_render_iterations(iterations))
    out.append("")
    out.extend(_render_counters(iterations, summary, top_k))
    return "\n".join(out)


# ----------------------------------------------------------------------
def _render_header(
    header: Optional[Dict], iterations: List[Dict], summary: Optional[Dict]
) -> List[str]:
    lines = ["=== run ==="]
    if header is not None:
        lines.append(
            f"circuit: {header['circuit']} "
            f"({header['num_inputs']} inputs, {header['num_outputs']} outputs, "
            f"area {header['area']})"
        )
        pct = (
            100.0 * header["rs_threshold"] / header["rs_max"]
            if header.get("rs_max")
            else 0.0
        )
        lines.append(
            f"RS threshold: {header['rs_threshold']:.6g} "
            f"({pct:.4g}% of RS_max {header['rs_max']:.6g})"
        )
        lines.append(
            f"vectors: {header['num_vectors']}  seed: {header['seed']}"
        )
    else:
        lines.append("(no run_start header -- journal prefix starts mid-run)")
    if summary is not None:
        lines.append(
            f"status: complete -- {summary['faults_injected']} faults, "
            f"area {summary['area_before']} -> {summary['area_after']} "
            f"({summary['area_reduction_pct']:.2f}%), "
            f"{summary['elapsed_s']:.2f}s"
        )
    else:
        lines.append(
            f"status: INTERRUPTED -- readable prefix holds "
            f"{len(iterations)} iteration(s)"
        )
    return lines


def _render_phase_times(
    iterations: List[Dict], summary: Optional[Dict]
) -> List[str]:
    lines = ["=== phase times ==="]
    if summary is not None and summary.get("timers"):
        timers = {
            path: (stat["total_s"], int(stat["count"]))
            for path, stat in summary["timers"].items()
        }
    else:
        # Interrupted run: rebuild from per-iteration phase_times.
        timers = {}
        for ev in iterations:
            for phase, secs in (ev.get("phase_times") or {}).items():
                total, count = timers.get(phase, (0.0, 0))
                timers[phase] = (total + secs, count + 1)
    if not timers:
        lines.append("(no timing data recorded)")
        return lines
    # Top-level spans partition the run; their sum is the 100% basis.
    top_total = sum(t for path, (t, _c) in timers.items() if "/" not in path)
    basis = top_total or sum(t for t, _c in timers.values()) or 1.0
    width = max(len(p) for p in timers)
    lines.append(f"{'phase':<{width}}  {'total':>9}  {'share':>6}  {'calls':>8}  {'mean':>9}")
    for path, (total, count) in sorted(timers.items(), key=lambda kv: -kv[1][0]):
        mean = total / count if count else 0.0
        lines.append(
            f"{path:<{width}}  {_fmt_s(total):>9}  {100 * total / basis:5.1f}%  "
            f"{count:>8}  {_fmt_s(mean):>9}"
        )
    return lines


def _render_iterations(iterations: List[Dict]) -> List[str]:
    lines = ["=== iterations ==="]
    if not iterations:
        lines.append("(no committed iterations)")
        return lines
    fault_w = max(5, max(len(str(ev["fault"])) for ev in iterations))
    lines.append(
        f"{'#':>3} {'ph':<3} {'fault':<{fault_w}} {'area':>5} {'-d':>4} "
        f"{'ER':>8} {'ES':>10} {'RS':>10} {'dRS':>10} {'cands':>5}"
    )
    for ev in iterations:
        delta = ev["area_before"] - ev["area_after"]
        lines.append(
            f"{ev['index']:>3} {ev['phase'][:3]:<3} {str(ev['fault']):<{fault_w}} "
            f"{ev['area_after']:>5} {delta:>4} "
            f"{ev['er']:>8.4f} {ev['es']:>10.4g} {ev['rs']:>10.4g} "
            f"{ev['delta_rs']:>+10.3g} {ev['candidates_evaluated']:>5}"
        )
    return lines


def _render_counters(
    iterations: List[Dict], summary: Optional[Dict], top_k: int
) -> List[str]:
    lines = [f"=== top counters (k={top_k}) ==="]
    if summary is not None and summary.get("counters"):
        counters: Dict[str, int] = dict(summary["counters"])
    else:
        counters = {}
        for ev in iterations:
            for name, n in (ev.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + n
    if not counters:
        lines.append("(no counters recorded)")
        return lines
    width = max(len(n) for n in counters)
    for name, n in sorted(counters.items(), key=lambda kv: -abs(kv[1]))[:top_k]:
        lines.append(f"{name:<{width}}  {n:>14,}")
    return lines


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"
