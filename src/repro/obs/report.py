"""Profiling view over a run journal: ``repro report <journal.jsonl>``.

Renders three sections from the JSONL event stream of one run:

* **phase-time breakdown** -- the hierarchical span timers from the
  summary snapshot, one row per span path with total/share/count/mean.
  For interrupted runs (no summary event) the per-iteration
  ``phase_times`` are aggregated instead, so a readable journal prefix
  still profiles;
* **iteration table** -- fault, area trajectory, ER/ES/RS and deltas
  per committed step;
* **top-k hotspot counters** -- the largest monotonic counters
  (vectors simulated, cache hits/misses, ATPG backtracks, ...),
  followed by the pinned ``parallel.*`` fallback/dispatch counters and
  the derived estimator cache hit-rates (never crowded out of the
  top-k window by bigger raw counts).

``report_as_dict`` is the machine-readable twin (``repro report
--format json``); :func:`collect_timers` / :func:`collect_counters`
are the shared aggregation layer that ``repro compare`` reuses, so the
two commands can never disagree about what a journal contains.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .journal import JournalError, load_journal

__all__ = [
    "render_report",
    "report_from_file",
    "report_as_dict",
    "render_snapshot",
    "collect_timers",
    "collect_counters",
    "collect_gauges",
    "derived_counter_rows",
]


# ----------------------------------------------------------------------
# shared aggregation (report + compare)
# ----------------------------------------------------------------------
def collect_timers(events: Sequence[Dict]) -> Dict[str, Tuple[float, int]]:
    """Span path -> (total seconds, call count) for one event stream.

    Prefers the summary snapshot; interrupted runs (readable prefix,
    no summary) re-aggregate the per-iteration ``phase_times``.
    """
    summary = next((e for e in events if e.get("event") == "summary"), None)
    if summary is not None and summary.get("timers"):
        return {
            path: (float(stat["total_s"]), int(stat["count"]))
            for path, stat in summary["timers"].items()
        }
    timers: Dict[str, Tuple[float, int]] = {}
    for ev in events:
        if ev.get("event") != "iteration":
            continue
        for phase, secs in (ev.get("phase_times") or {}).items():
            total, count = timers.get(phase, (0.0, 0))
            timers[phase] = (total + secs, count + 1)
    return timers


def collect_counters(events: Sequence[Dict]) -> Dict[str, int]:
    """Counter name -> value for one event stream (summary snapshot,
    falling back to summed per-iteration deltas for interrupted runs)."""
    summary = next((e for e in events if e.get("event") == "summary"), None)
    if summary is not None and summary.get("counters"):
        return dict(summary["counters"])
    counters: Dict[str, int] = {}
    for ev in events:
        if ev.get("event") != "iteration":
            continue
        for name, n in (ev.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + n
    return counters


def collect_gauges(events: Sequence[Dict]) -> Dict[str, float]:
    """Gauge name -> last value for one event stream.

    Prefers the summary snapshot's gauges; interrupted runs fall back
    to the last coordinator ``telemetry`` sample's rate gauges (the
    only gauges the event stream itself carries), so a dead run still
    reports its final throughput readings.
    """
    summary = next((e for e in events if e.get("event") == "summary"), None)
    if summary is not None and summary.get("gauges"):
        return dict(summary["gauges"])
    gauges: Dict[str, float] = {}
    for ev in events:
        if ev.get("event") != "telemetry" or ev.get("lane") != "coordinator":
            continue
        gauges["telemetry.rss_bytes"] = ev.get("rss_bytes", 0)
        gauges["telemetry.rss_peak_bytes"] = max(
            gauges.get("telemetry.rss_peak_bytes", 0), ev.get("rss_bytes", 0)
        )
        gauges["telemetry.cpu_s"] = ev.get("cpu_s", 0.0)
        for name, rate in (ev.get("gauges") or {}).items():
            gauges[f"telemetry.{name}"] = rate
    return gauges


#: (hit counter, miss counter) pairs rendered as derived hit-rates.
_CACHE_PAIRS = (
    ("estimator.batchsim_cache_hits", "estimator.batchsim_cache_misses"),
    ("estimator.sim_cache_hits", "estimator.sim_cache_misses"),
    ("batchsim.plan_cache_hits", "batchsim.plan_cache_misses"),
)


def derived_counter_rows(counters: Dict[str, int]) -> List[Tuple[str, str]]:
    """Derived (name, rendered value) rows: estimator cache hit-rates."""
    rows: List[Tuple[str, str]] = []
    for hits_key, misses_key in _CACHE_PAIRS:
        hits = counters.get(hits_key, 0)
        misses = counters.get(misses_key, 0)
        total = hits + misses
        if total:
            name = hits_key.rsplit("_hits", 1)[0] + "_hit_rate"
            rows.append((name, f"{100.0 * hits / total:5.1f}%  ({hits}/{total})"))
    return rows


def _counter_table(
    counters: Dict[str, int], top_k: int
) -> List[Tuple[str, int]]:
    """Top-k counters by magnitude, with every ``parallel.*`` and
    ``quality.*`` counter pinned into the table regardless of rank
    (a nonzero budget-risk or zero-pattern count must never be crowded
    out by bigger raw numbers)."""
    ranked = sorted(counters.items(), key=lambda kv: -abs(kv[1]))
    table = ranked[:top_k]
    shown = {name for name, _n in table}
    for name, n in ranked[top_k:]:
        if name.startswith(("parallel.", "quality.")) and name not in shown:
            table.append((name, n))
    return table


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def render_snapshot(snapshot: Dict, top_k: int = 12) -> str:
    """Render phase times + counters straight from an
    :meth:`~repro.obs.core.Instrumentation.snapshot` (the ``--profile``
    view, no journal needed)."""
    pseudo_summary = {
        "event": "summary",
        "timers": snapshot.get("timers", {}),
        "counters": snapshot.get("counters", {}),
    }
    lines = _render_phase_times(collect_timers([pseudo_summary]))
    lines.append("")
    lines.extend(_render_counters(collect_counters([pseudo_summary]), top_k))
    return "\n".join(lines)


def report_from_file(
    path: Union[str, os.PathLike], top_k: int = 12
) -> str:
    """Load a journal file and render the profiling report.

    Loads tolerantly (``skip_unknown``): event types newer than this
    build degrade to "not shown" instead of erroring.
    """
    events = load_journal(path, skip_unknown=True)
    if not events:
        raise JournalError(f"{path}: empty journal")
    return render_report(events, top_k=top_k)


def render_report(events: Sequence[Dict], top_k: int = 12) -> str:
    """Render the report from already-parsed journal events."""
    header = next((e for e in events if e.get("event") == "run_start"), None)
    iterations = [e for e in events if e.get("event") == "iteration"]
    summary = next((e for e in events if e.get("event") == "summary"), None)

    out: List[str] = []
    out.extend(_render_header(header, iterations, summary))
    out.append("")
    out.extend(_render_phase_times(collect_timers(events)))
    out.append("")
    out.extend(_render_iterations(iterations))
    out.append("")
    out.extend(_render_counters(collect_counters(events), top_k))
    gauges = collect_gauges(events)
    if gauges:
        out.append("")
        out.extend(_render_gauges(gauges))
    return "\n".join(out)


def report_as_dict(events: Sequence[Dict], top_k: int = 12) -> Dict:
    """Machine-readable report (``repro report --format json``).

    Mirrors the text sections: run header/status, phase times (with
    share against the top-level basis), the iteration table, the top-k
    counter table with the pinned ``parallel.*`` rows, and the derived
    cache hit-rates as exact ``hits``/``total`` integers.
    """
    header = next((e for e in events if e.get("event") == "run_start"), None)
    iterations = [e for e in events if e.get("event") == "iteration"]
    summary = next((e for e in events if e.get("event") == "summary"), None)
    timers = collect_timers(events)
    counters = collect_counters(events)
    basis = _share_basis(timers)

    derived = {}
    for hits_key, misses_key in _CACHE_PAIRS:
        hits = counters.get(hits_key, 0)
        total = hits + counters.get(misses_key, 0)
        if total:
            name = hits_key.rsplit("_hits", 1)[0] + "_hit_rate"
            derived[name] = {
                "hits": hits,
                "total": total,
                "rate": hits / total,
            }

    return {
        "run": {
            "circuit": header.get("circuit") if header else None,
            "status": "complete" if summary is not None else "interrupted",
            "rs_threshold": header.get("rs_threshold") if header else None,
            "seed": header.get("seed") if header else None,
            "num_vectors": header.get("num_vectors") if header else None,
            "iterations": len(iterations),
            "faults_injected": (
                summary.get("faults_injected") if summary else len(iterations)
            ),
            "area_reduction_pct": (
                summary.get("area_reduction_pct") if summary else None
            ),
            "elapsed_s": summary.get("elapsed_s") if summary else None,
        },
        "phase_times": [
            {
                "path": path,
                "total_s": total,
                "share": total / basis,
                "count": count,
                "mean_s": total / count if count else 0.0,
            }
            for path, (total, count) in sorted(
                timers.items(), key=lambda kv: -kv[1][0]
            )
        ],
        "iterations": [
            {
                "index": ev["index"],
                "phase": ev["phase"],
                "fault": ev["fault"],
                "area_before": ev["area_before"],
                "area_after": ev["area_after"],
                "er": ev["er"],
                "es": ev["es"],
                "rs": ev["rs"],
                "delta_rs": ev["delta_rs"],
                "fom": ev.get("fom"),
                "candidates_evaluated": ev["candidates_evaluated"],
            }
            for ev in iterations
        ],
        "counters": dict(_counter_table(counters, top_k)),
        "gauges": collect_gauges(events),
        "derived": derived,
    }


# ----------------------------------------------------------------------
def _render_header(
    header: Optional[Dict], iterations: List[Dict], summary: Optional[Dict]
) -> List[str]:
    lines = ["=== run ==="]
    if header is not None:
        lines.append(
            f"circuit: {header['circuit']} "
            f"({header['num_inputs']} inputs, {header['num_outputs']} outputs, "
            f"area {header['area']})"
        )
        pct = (
            100.0 * header["rs_threshold"] / header["rs_max"]
            if header.get("rs_max")
            else 0.0
        )
        lines.append(
            f"RS threshold: {header['rs_threshold']:.6g} "
            f"({pct:.4g}% of RS_max {header['rs_max']:.6g})"
        )
        lines.append(
            f"vectors: {header['num_vectors']}  seed: {header['seed']}"
        )
    else:
        lines.append("(no run_start header -- journal prefix starts mid-run)")
    if summary is not None:
        status = (
            f"status: complete -- {summary['faults_injected']} faults, "
            f"area {summary['area_before']} -> {summary['area_after']} "
            f"({summary['area_reduction_pct']:.2f}%)"
        )
        if summary.get("elapsed_s") is not None:
            status += f", {summary['elapsed_s']:.2f}s"
        lines.append(status)
    else:
        lines.append(
            f"status: INTERRUPTED -- readable prefix holds "
            f"{len(iterations)} iteration(s)"
        )
    return lines


def _share_basis(timers: Dict[str, Tuple[float, int]]) -> float:
    # Top-level spans partition the run; their sum is the 100% basis.
    top_total = sum(t for path, (t, _c) in timers.items() if "/" not in path)
    return top_total or sum(t for t, _c in timers.values()) or 1.0


def _render_phase_times(timers: Dict[str, Tuple[float, int]]) -> List[str]:
    lines = ["=== phase times ==="]
    if not timers:
        lines.append("(no timing data recorded)")
        return lines
    basis = _share_basis(timers)
    width = max(len(p) for p in timers)
    lines.append(f"{'phase':<{width}}  {'total':>9}  {'share':>6}  {'calls':>8}  {'mean':>9}")
    for path, (total, count) in sorted(timers.items(), key=lambda kv: -kv[1][0]):
        mean = total / count if count else 0.0
        lines.append(
            f"{path:<{width}}  {_fmt_s(total):>9}  {100 * total / basis:5.1f}%  "
            f"{count:>8}  {_fmt_s(mean):>9}"
        )
    return lines


def _render_iterations(iterations: List[Dict]) -> List[str]:
    lines = ["=== iterations ==="]
    if not iterations:
        lines.append("(no committed iterations)")
        return lines
    fault_w = max(5, max(len(str(ev["fault"])) for ev in iterations))
    lines.append(
        f"{'#':>3} {'ph':<3} {'fault':<{fault_w}} {'area':>5} {'-d':>4} "
        f"{'ER':>8} {'ES':>10} {'RS':>10} {'dRS':>10} {'cands':>5}"
    )
    for ev in iterations:
        delta = ev["area_before"] - ev["area_after"]
        lines.append(
            f"{ev['index']:>3} {ev['phase'][:3]:<3} {str(ev['fault']):<{fault_w}} "
            f"{ev['area_after']:>5} {delta:>4} "
            f"{ev['er']:>8.4f} {ev['es']:>10.4g} {ev['rs']:>10.4g} "
            f"{ev['delta_rs']:>+10.3g} {ev['candidates_evaluated']:>5}"
        )
    return lines


def _render_counters(counters: Dict[str, int], top_k: int) -> List[str]:
    lines = [f"=== top counters (k={top_k}) ==="]
    if not counters:
        lines.append("(no counters recorded)")
        return lines
    table = _counter_table(counters, top_k)
    derived = derived_counter_rows(counters)
    width = max(
        max(len(n) for n, _ in table),
        max((len(n) for n, _ in derived), default=0),
    )
    for name, n in table:
        lines.append(f"{name:<{width}}  {n:>14,}")
    for name, text in derived:
        lines.append(f"{name:<{width}}  {text}")
    return lines


def _render_gauges(gauges: Dict[str, float]) -> List[str]:
    lines = ["=== gauges ==="]
    width = max(len(n) for n in gauges)
    for name in sorted(gauges):
        value = gauges[name]
        if isinstance(value, float) and value != int(value):
            lines.append(f"{name:<{width}}  {value:>14,.3f}")
        else:
            lines.append(f"{name:<{width}}  {int(value):>14,}")
    return lines


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"
