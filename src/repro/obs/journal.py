"""Structured run journal: one JSONL event stream per simplification run.

A journal is an append-only sequence of JSON objects, one per line:

* ``run_start`` -- run header: circuit identity (name/inputs/outputs/
  area), RS threshold, greedy config, seed and vector-batch size;
* ``iteration`` -- one committed simplification step: the accepted
  fault, area before/after, ER/ES/RS of the cumulative change plus the
  deltas against the previous step, FOM value, candidates evaluated,
  per-phase wall times and the counter deltas (cache hits, vectors
  simulated, ATPG effort) attributable to the step.  Prepass
  (redundancy) injections carry ``"phase": "prepass"``, greedy commits
  ``"phase": "greedy"``;
* ``summary`` -- final metrics, totals, and the full instrumentation
  snapshot (timers/counters/gauges).

Durability contract: every event is serialized to a full line first and
handed to the OS in a **single buffered write followed by a flush**, so
a run killed between events leaves a journal whose every line is a
complete, parseable event -- interrupted runs keep a readable prefix.
(A kill *during* the one write can leave at most one torn final line;
:func:`read_journal` tolerates exactly that.)  The file itself is
opened in ``w`` mode: a journal path names one run.

:func:`read_journal` / :func:`validate_event` are the consumer side:
the reader yields parsed events in order and (non-strict mode) ignores
a torn final line, while validation pins the per-type required keys so
the `repro report` renderer and the tests share one schema source.

Version 2 extends the schema for checkpoint/resume
(:mod:`repro.parallel.checkpoint`): ``iteration`` events carry a
structured ``fault_detail`` object (signal/gate/pin/value) so committed
faults can be replayed through the Overlay engine, ``rejection`` events
record commit-phase rejections (rebuilding the greedy loop's banned set
on resume), and a ``resume`` event marks each continuation of an
interrupted run.  A journal written in append mode (``append=True``)
continues an existing file instead of naming a fresh run.

Version 3 adds estimator-calibration observability
(:mod:`repro.obs.quality`): each committed iteration is followed by a
``calibration`` event pairing the *predicted* ER/ES/area deltas the
candidate ranking saw at selection time with the *realized* commit
measurement, the ER sample size, the Wilson-score confidence interval,
and the budget-risk flag (CI upper bound crosses the RS threshold
although the point estimate did not).  ``repro audit`` renders these;
v2 journals (no calibration events) still load everywhere, with the
calibration view degrading to CI bands recomputed from the journaled
ER and batch size.

Version 4 adds resource telemetry (:mod:`repro.obs.telemetry`):
``telemetry`` events are periodic samples -- RSS bytes, cumulative CPU
seconds, and derived throughput gauges -- recorded by a background
monitor thread into the same stream (coordinator lane) and merged from
the scoring workers (one lane per worker pid).  Because the sampler is
a thread, :meth:`RunJournal.emit` serializes concurrent emitters under
a lock; the one-write-per-line durability contract is unchanged.
Readers that only understand older event sets pass
``skip_unknown=True`` to :func:`read_journal` / :func:`load_journal`
(``report``/``compare``/``audit`` do), so future event types degrade
gracefully instead of erroring.
"""

from __future__ import annotations

import json
import os
import threading
from typing import IO, Dict, Iterator, List, Optional, Union

__all__ = [
    "JOURNAL_VERSION",
    "REQUIRED_KEYS",
    "JournalError",
    "RunJournal",
    "validate_event",
    "read_journal",
    "load_journal",
    "truncate_torn_tail",
]

JOURNAL_VERSION = 4

#: Required keys per event type.  ``iteration`` deliberately does not
#: require ``phase_times``/``counters``/``fault_detail`` -- they are
#: best-effort detail, while the listed keys are the analysis contract.
REQUIRED_KEYS: Dict[str, tuple] = {
    "run_start": (
        "event",
        "version",
        "circuit",
        "num_inputs",
        "num_outputs",
        "area",
        "rs_threshold",
        "rs_max",
        "seed",
        "num_vectors",
        "config",
    ),
    "iteration": (
        "event",
        "index",
        "phase",
        "fault",
        "area_before",
        "area_after",
        "er",
        "es",
        "observed_es",
        "rs",
        "delta_er",
        "delta_es",
        "delta_rs",
        "fom",
        "candidates_evaluated",
    ),
    "rejection": (
        "event",
        "index",
        "fault",
        "reason",
    ),
    "calibration": (
        "event",
        "index",
        "fault",
        "predicted",
        "realized",
        "num_vectors",
        "er_ci",
        "budget_risk",
    ),
    "resume": (
        "event",
        "version",
        "replayed_iterations",
        "area",
        "rs",
    ),
    "telemetry": (
        "event",
        "t_s",
        "pid",
        "lane",
        "rss_bytes",
        "cpu_s",
    ),
    "summary": (
        "event",
        "iterations",
        "faults_injected",
        "area_before",
        "area_after",
        "area_reduction_pct",
        "elapsed_s",
        "timers",
        "counters",
    ),
}


class JournalError(ValueError):
    """A journal line or event violates the schema."""


def validate_event(event: Dict) -> Dict:
    """Check an event against :data:`REQUIRED_KEYS`; returns it unchanged.

    Version-carrying events (``run_start``/``resume``) are additionally
    checked against :data:`JOURNAL_VERSION`: a journal written by a
    *newer* schema fails here with a clear "unsupported version" error
    in **every** reader -- report, compare, checkpoint resume -- instead
    of surfacing later as a ``KeyError`` on a field this build has
    never heard of.
    """
    if not isinstance(event, dict):
        raise JournalError(f"journal event must be an object, got {type(event).__name__}")
    etype = event.get("event")
    required = REQUIRED_KEYS.get(etype)
    if required is None:
        raise JournalError(f"unknown journal event type {etype!r}")
    missing = [k for k in required if k not in event]
    if missing:
        raise JournalError(f"{etype} event missing required keys: {missing}")
    if "version" in required:
        version = event["version"]
        if not isinstance(version, int) or isinstance(version, bool):
            raise JournalError(
                f"{etype} event has a non-integer schema version {version!r}"
            )
        if version > JOURNAL_VERSION:
            raise JournalError(
                f"unsupported journal schema version {version} "
                f"(this build reads up to v{JOURNAL_VERSION}); "
                f"upgrade repro to read this journal"
            )
    return event


class RunJournal:
    """JSONL event writer with a readable-prefix durability guarantee.

    ``fsync=True`` additionally forces every event to stable storage
    (for crash-hardened runs; the default only guarantees the prefix
    property against process death, not power loss).  ``append=True``
    continues an existing journal (the checkpoint-resume path) instead
    of starting a fresh run file.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        fsync: bool = False,
        append: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        self._fsync = fsync
        mode = "a" if append else "w"
        self._fh: Optional[IO[str]] = open(self.path, mode, encoding="utf-8")
        self.events_written = 0
        # The telemetry monitor emits from a background thread while the
        # greedy loop emits from the main thread; the lock keeps each
        # line's write+flush atomic against the other emitter.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def emit(self, event: Dict) -> None:
        """Validate, serialize and durably append one event line."""
        validate_event(event)
        line = json.dumps(event, separators=(",", ":"), sort_keys=True, default=_jsonify)
        with self._lock:
            if self._fh is None:
                raise JournalError(f"journal {self.path} is closed")
            # One write call for the complete line, then flush: an
            # interrupt between events never tears a line.
            self._fh.write(line + "\n")
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())
            self.events_written += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _jsonify(obj):
    """JSON fallback for config payloads (numpy scalars, odd objects)."""
    for cast in (int, float):
        try:
            return cast(obj)
        except (TypeError, ValueError):
            continue
    return str(obj)


def read_journal(
    path: Union[str, os.PathLike],
    strict: bool = False,
    validate: bool = True,
    skip_unknown: bool = False,
) -> Iterator[Dict]:
    """Yield the parsed events of a journal file in order.

    In the default non-strict mode a torn **final** line (the one
    partial write an interrupt can leave behind) is silently ignored;
    any other malformed or mid-file garbage line raises
    :class:`JournalError` either way, because it means the file is not
    a journal prefix but a corrupted stream.

    ``skip_unknown=True`` silently drops well-formed events whose type
    this build has never heard of (the forward-compat contract for the
    analysis readers: a v5 journal's new event types degrade to "not
    shown" in ``report``/``compare``/``audit`` instead of erroring).
    Version-carrying events are still version-checked -- a journal a
    *newer schema* wrote is rejected with a clear error either way.
    """
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        raw = fh.read()
    lines = raw.split("\n")
    trailing_complete = lines and lines[-1] == ""
    if trailing_complete:
        lines.pop()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        is_last = i == len(lines) - 1
        try:
            event = json.loads(line)
            if (
                skip_unknown
                and isinstance(event, dict)
                and event.get("event") not in REQUIRED_KEYS
            ):
                continue
            if validate:
                validate_event(event)
        except (json.JSONDecodeError, JournalError) as exc:
            if is_last and not trailing_complete and not strict:
                return  # torn final line from an interrupted run
            raise JournalError(f"{path}: bad journal line {i + 1}: {exc}") from exc
        yield event


def load_journal(
    path: Union[str, os.PathLike],
    strict: bool = False,
    validate: bool = True,
    skip_unknown: bool = False,
) -> List[Dict]:
    """Eager list form of :func:`read_journal`."""
    return list(
        read_journal(
            path, strict=strict, validate=validate, skip_unknown=skip_unknown
        )
    )


def truncate_torn_tail(path: Union[str, os.PathLike]) -> bool:
    """Cut a torn (newline-less) final line off a journal file.

    A run killed *during* its one write per event can leave exactly one
    partial final line; appending new events after it would weld two
    events into mid-file garbage.  Truncating to the last complete line
    restores the readable-prefix invariant before a resume appends.
    Returns True when bytes were removed.
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        raw = fh.read()
    if not raw or raw.endswith(b"\n"):
        return False
    keep = raw.rfind(b"\n") + 1  # 0 when no complete line exists
    with open(path, "rb+") as fh:
        fh.truncate(keep)
    return True
