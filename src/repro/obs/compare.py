"""Cross-run journal diff: ``repro compare RUN_A.jsonl RUN_B.jsonl``.

Aligns two run journals iteration-by-iteration and reports three
things an estimator or perf change can move:

* **trajectory divergence** -- the first iteration index at which the
  runs disagree (different fault committed, or same fault with
  different area/ER/ES/RS), plus the area and RS trajectory deltas.
  Two journals of the *same* run compare with zero divergence; runs
  under different FOM settings (or a changed estimator) report the
  first diverging step and field;
* **phase-time deltas** -- per span path, B's total wall seconds
  against A's (from the summary snapshots, or re-aggregated from the
  per-iteration ``phase_times`` when a run was interrupted);
* **counter deltas** -- the instrumentation counters side by side,
  with the derived estimator cache hit-rates alongside the raw hits/
  misses (a cache regression shows up here before it shows up in wall
  time).

The comparison is exact: journals serialize floats canonically, so two
journals of one deterministic run are textually identical field-for-
field, and *any* numeric difference is a real divergence.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .journal import JournalError, load_journal
from .report import collect_counters, collect_timers, derived_counter_rows

__all__ = ["compare_runs", "compare_files", "render_compare"]

#: Iteration-event fields compared for divergence, in report priority
#: order (the first differing field is the one named).
_DIVERGENCE_FIELDS = (
    "fault",
    "phase",
    "area_before",
    "area_after",
    "er",
    "es",
    "observed_es",
    "rs",
    "fom",
    "candidates_evaluated",
)


def compare_files(
    path_a: Union[str, os.PathLike],
    path_b: Union[str, os.PathLike],
) -> Dict:
    """Load two journal files and compare them (see :func:`compare_runs`)."""
    events_a = load_journal(path_a, skip_unknown=True)
    events_b = load_journal(path_b, skip_unknown=True)
    if not events_a:
        raise JournalError(f"{path_a}: empty journal")
    if not events_b:
        raise JournalError(f"{path_b}: empty journal")
    result = compare_runs(events_a, events_b)
    result["a"]["path"] = os.fspath(path_a)
    result["b"]["path"] = os.fspath(path_b)
    return result


def compare_runs(events_a: Sequence[Dict], events_b: Sequence[Dict]) -> Dict:
    """Structured comparison of two parsed journal event streams."""
    side_a = _side_view(events_a)
    side_b = _side_view(events_b)
    iters_a = side_a.pop("_iterations")
    iters_b = side_b.pop("_iterations")

    divergence = _first_divergence(iters_a, iters_b)
    trajectory = _trajectory_deltas(iters_a, iters_b)

    timers_a = collect_timers(events_a)
    timers_b = collect_timers(events_b)
    phase_times = {
        path: {
            "a_s": round(timers_a.get(path, (0.0, 0))[0], 6),
            "b_s": round(timers_b.get(path, (0.0, 0))[0], 6),
            "delta_s": round(
                timers_b.get(path, (0.0, 0))[0] - timers_a.get(path, (0.0, 0))[0], 6
            ),
        }
        for path in sorted(set(timers_a) | set(timers_b))
    }

    counters_a = collect_counters(events_a)
    counters_b = collect_counters(events_b)
    counters = {
        name: {
            "a": counters_a.get(name, 0),
            "b": counters_b.get(name, 0),
            "delta": counters_b.get(name, 0) - counters_a.get(name, 0),
        }
        for name in sorted(set(counters_a) | set(counters_b))
    }
    derived = {
        "a": derived_counter_rows(counters_a),
        "b": derived_counter_rows(counters_b),
    }

    return {
        "a": side_a,
        "b": side_b,
        "identical_trajectory": divergence is None
        and len(iters_a) == len(iters_b),
        "first_divergence": divergence,
        "trajectory": trajectory,
        "phase_times": phase_times,
        "counters": counters,
        "derived": derived,
    }


# ----------------------------------------------------------------------
def _side_view(events: Sequence[Dict]) -> Dict:
    header = next((e for e in events if e.get("event") == "run_start"), None)
    summary = next((e for e in events if e.get("event") == "summary"), None)
    iterations = [e for e in events if e.get("event") == "iteration"]
    calibrations = [e for e in events if e.get("event") == "calibration"]
    # Pre-v3 journals carry no calibration events: budget risk is
    # unknown (None), not zero.
    version = (header or {}).get("version")
    budget_risk = (
        sum(1 for e in calibrations if e.get("budget_risk"))
        if (version is not None and version >= 3)
        else None
    )
    view: Dict = {
        "circuit": header.get("circuit") if header else None,
        "fom": (header or {}).get("config", {}).get("fom"),
        "seed": header.get("seed") if header else None,
        "rs_threshold": header.get("rs_threshold") if header else None,
        "iterations": len(iterations),
        "budget_risk": budget_risk,
        "complete": summary is not None,
        "_iterations": iterations,
    }
    if summary is not None:
        view["area_reduction_pct"] = summary.get("area_reduction_pct")
        view["elapsed_s"] = summary.get("elapsed_s")
    return view


def _first_divergence(
    iters_a: List[Dict], iters_b: List[Dict]
) -> Optional[Dict]:
    for i, (ev_a, ev_b) in enumerate(zip(iters_a, iters_b)):
        for field in _DIVERGENCE_FIELDS:
            if ev_a.get(field) != ev_b.get(field):
                return {
                    "iteration": i,
                    "index": ev_a.get("index"),
                    "field": field,
                    "a": ev_a.get(field),
                    "b": ev_b.get(field),
                }
    if len(iters_a) != len(iters_b):
        i = min(len(iters_a), len(iters_b))
        longer = "a" if len(iters_a) > len(iters_b) else "b"
        extra = (iters_a if longer == "a" else iters_b)[i]
        return {
            "iteration": i,
            "index": extra.get("index"),
            "field": "length",
            "a": len(iters_a),
            "b": len(iters_b),
        }
    return None


def _trajectory_deltas(iters_a: List[Dict], iters_b: List[Dict]) -> Dict:
    max_area = 0
    max_rs = 0.0
    for ev_a, ev_b in zip(iters_a, iters_b):
        max_area = max(max_area, abs(ev_a["area_after"] - ev_b["area_after"]))
        max_rs = max(max_rs, abs(ev_a["rs"] - ev_b["rs"]))
    return {
        "compared_iterations": min(len(iters_a), len(iters_b)),
        "max_abs_area_delta": max_area,
        "max_abs_rs_delta": max_rs,
        "final_area": (
            iters_a[-1]["area_after"] if iters_a else None,
            iters_b[-1]["area_after"] if iters_b else None,
        ),
        "final_rs": (
            iters_a[-1]["rs"] if iters_a else None,
            iters_b[-1]["rs"] if iters_b else None,
        ),
    }


# ----------------------------------------------------------------------
def render_compare(cmp: Dict, top_k: int = 12) -> str:
    """Human-readable rendering of a :func:`compare_runs` result."""
    a, b = cmp["a"], cmp["b"]
    lines = ["=== runs ==="]
    for tag, side in (("A", a), ("B", b)):
        bits = [
            f"{tag}: {side.get('path', '<events>')}",
            f"circuit={side['circuit']}",
            f"fom={side['fom']}",
            f"seed={side['seed']}",
            f"iterations={side['iterations']}",
            "complete" if side["complete"] else "INTERRUPTED",
        ]
        lines.append("  ".join(bits))

    lines.append("")
    lines.append("=== trajectory ===")
    div = cmp["first_divergence"]
    if div is None:
        lines.append(
            f"zero divergence over {cmp['trajectory']['compared_iterations']} "
            f"iteration(s)"
        )
    else:
        lines.append(
            f"FIRST DIVERGENCE at iteration {div['iteration']} "
            f"(journal index {div['index']}): field {div['field']!r} "
            f"A={div['a']!r} B={div['b']!r}"
        )
        traj = cmp["trajectory"]
        lines.append(
            f"max |area delta| {traj['max_abs_area_delta']}  "
            f"max |RS delta| {traj['max_abs_rs_delta']:.6g}  "
            f"final area A={traj['final_area'][0]} B={traj['final_area'][1]}"
        )

    lines.append("")
    lines.append("=== phase-time deltas (B - A) ===")
    rows = sorted(
        cmp["phase_times"].items(), key=lambda kv: -abs(kv[1]["delta_s"])
    )[:top_k]
    if rows:
        width = max(len(p) for p, _ in rows)
        for path, d in rows:
            lines.append(
                f"{path:<{width}}  A={d['a_s']:>9.3f}s  B={d['b_s']:>9.3f}s  "
                f"delta={d['delta_s']:>+9.3f}s"
            )
    else:
        lines.append("(no timing data)")

    lines.append("")
    lines.append(f"=== counter deltas (B - A, top {top_k}) ===")
    crows = sorted(
        cmp["counters"].items(), key=lambda kv: -abs(kv[1]["delta"])
    )[:top_k]
    if crows:
        width = max(len(n) for n, _ in crows)
        for name, d in crows:
            lines.append(
                f"{name:<{width}}  A={d['a']:>12,}  B={d['b']:>12,}  "
                f"delta={d['delta']:>+12,}"
            )
    else:
        lines.append("(no counters recorded)")

    for tag in ("a", "b"):
        derived = cmp["derived"][tag]
        if derived:
            lines.append("")
            lines.append(f"=== derived ({tag.upper()}) ===")
            width = max(len(n) for n, _ in derived)
            for name, text in derived:
                lines.append(f"{name:<{width}}  {text}")
    return "\n".join(lines)
