"""Cross-run benchmark trends: ``repro trends BENCH_*.json``.

``BENCH_<name>.json`` (written by the benchmark suite's ``bench_json``
fixture) is a snapshot: one file, the latest rows, no history.  This
module gives it a memory and a gate:

* :func:`append_history` folds each snapshot row into
  ``BENCH_history.jsonl`` -- one JSON line per (bench, row, timestamp),
  append-only, so the perf trajectory across PRs lives in the repo's CI
  artifact chain rather than in whoever remembered last week's number;
* :func:`detect_regressions` compares each new row against the
  **trailing median** of the most recent prior entries with the same
  identity (same bench, same circuit/config fields).  Time-like and
  memory-like metrics (``t_*_ms``, ``*_s``, ``rss_*_mb``,
  ``overhead_pct``) regress when they grow more than
  ``threshold`` above the median; ``speedup*`` metrics regress when
  they fall more than ``threshold`` below it.  The median (not the
  last value) absorbs single-run CI noise; the window keeps old eras
  from vetoing a legitimately changed baseline.

CI runs ``repro trends`` as a *soft-fail* step: regressions annotate
the run (exit code 3 under ``--fail-on-regression``, which the
workflow wraps in ``continue-on-error``) without blocking the merge --
shared-runner numbers are too noisy for a hard gate, but a >15% move
against a 5-run median is worth a human look.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "TrendRegression",
    "load_bench_file",
    "append_history",
    "read_history",
    "detect_regressions",
]

#: Row fields that identify *what* was measured (matched across runs);
#: every other numeric field is a candidate metric.
_LOWER_IS_BETTER_PREFIXES = ("t_", "rss_", "overhead")
_LOWER_IS_BETTER_SUFFIXES = ("_ms", "_s", "_mb")
_HIGHER_IS_BETTER_PREFIXES = ("speedup",)


@dataclass
class TrendRegression:
    """One flagged metric move against its trailing median."""

    bench: str
    identity: Tuple[Tuple[str, object], ...]
    metric: str
    value: float
    median: float
    change_pct: float
    samples: int

    def describe(self) -> str:
        ident = " ".join(f"{k}={v}" for k, v in self.identity)
        return (
            f"REGRESSION {self.bench} [{ident}] {self.metric}: "
            f"{self.value:g} vs trailing median {self.median:g} "
            f"({self.change_pct:+.1f}%, n={self.samples})"
        )


def _metric_direction(name: str) -> Optional[int]:
    """+1 when higher is better, -1 when lower is better, None when the
    field is not a tracked metric."""
    if name.startswith(_HIGHER_IS_BETTER_PREFIXES):
        return 1
    if name.startswith(_LOWER_IS_BETTER_PREFIXES) or name.endswith(
        _LOWER_IS_BETTER_SUFFIXES
    ):
        return -1
    return None


def _split_row(row: Dict) -> Tuple[Tuple[Tuple[str, object], ...], Dict[str, float]]:
    """(identity fields, metric fields) for one bench row."""
    identity = []
    metrics = {}
    for key in sorted(row):
        value = row[key]
        direction = _metric_direction(key)
        if direction is not None and isinstance(value, (int, float)):
            metrics[key] = float(value)
        else:
            identity.append((key, value))
    return tuple(identity), metrics


def load_bench_file(path: Union[str, os.PathLike]) -> Tuple[str, List[Dict]]:
    """Read one ``BENCH_<name>.json`` snapshot -> (bench name, rows)."""
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "rows" not in data:
        raise ValueError(f"{path}: not a BENCH_*.json snapshot (no 'rows')")
    name = data.get("bench") or os.path.basename(os.fspath(path))
    return str(name), list(data["rows"])


def read_history(path: Union[str, os.PathLike]) -> List[Dict]:
    """All history records, oldest first; a torn final line (killed CI
    job mid-append) is tolerated exactly like a torn journal line."""
    path = os.fspath(path)
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        raw = fh.read()
    lines = raw.split("\n")
    trailing_complete = lines and lines[-1] == ""
    records = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1 and not trailing_complete:
                break  # torn final append
            raise ValueError(f"{path}: bad history line {i + 1}: {exc}") from exc
    return records


def detect_regressions(
    history: Sequence[Dict],
    bench: str,
    rows: Sequence[Dict],
    threshold: float = 0.15,
    window: int = 5,
    min_samples: int = 2,
) -> List[TrendRegression]:
    """Flag rows whose metrics moved > ``threshold`` against the
    trailing median of the last ``window`` matching history entries."""
    flagged: List[TrendRegression] = []
    for row in rows:
        identity, metrics = _split_row(row)
        prior = [
            rec["row"]
            for rec in history
            if rec.get("bench") == bench
            and _split_row(rec.get("row", {}))[0] == identity
        ][-window:]
        if len(prior) < min_samples:
            continue
        for metric, value in metrics.items():
            direction = _metric_direction(metric)
            samples = sorted(
                float(p[metric]) for p in prior if isinstance(p.get(metric), (int, float))
            )
            if len(samples) < min_samples:
                continue
            median = _median(samples)
            if median == 0:
                continue
            change = (value - median) / abs(median)
            if (direction < 0 and change > threshold) or (
                direction > 0 and change < -threshold
            ):
                flagged.append(
                    TrendRegression(
                        bench=bench,
                        identity=identity,
                        metric=metric,
                        value=value,
                        median=median,
                        change_pct=100.0 * change,
                        samples=len(samples),
                    )
                )
    return flagged


def append_history(
    path: Union[str, os.PathLike],
    bench: str,
    rows: Sequence[Dict],
    recorded_unix: Optional[float] = None,
) -> List[Dict]:
    """Append one history record per row (one JSON line each); returns
    the appended records."""
    recorded = time.time() if recorded_unix is None else float(recorded_unix)
    records = [
        {"bench": bench, "recorded_unix": recorded, "row": dict(row)}
        for row in rows
    ]
    path = os.fspath(path)
    # First run of a fresh checkout: the history file (and possibly its
    # directory) does not exist yet -- create it instead of tracebacking.
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, separators=(",", ":"), sort_keys=True) + "\n")
        fh.flush()
    return records


def _median(ordered: List[float]) -> float:
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])
