"""Zero-dependency instrumentation core: spans, counters, gauges.

One :class:`Instrumentation` object is the telemetry registry for one
simplification run.  Hot paths record into it through three primitives:

* ``span(name)`` -- a context manager timing a (possibly nested) phase.
  Nested spans accumulate under a ``/``-joined hierarchical path, so
  ``greedy/rank`` and ``greedy/commit/atpg`` line up into a call-tree
  breakdown without any explicit parent bookkeeping;
* ``incr(name, n)`` -- monotonic counters (vectors simulated, faults
  dropped, cache hits, PODEM backtracks, ...);
* ``gauge(name, value)`` / ``gauge_max(name, value)`` -- last-value and
  high-watermark readings (cone sizes, shortlist lengths);
* ``observe_latency(name, seconds)`` -- fixed-bucket latency
  histograms (:mod:`repro.obs.slo`), the job server's queue-wait and
  end-to-end latency distributions.

Instrumented code never checks an "am I enabled" flag: it records into
whichever instance it was handed, and the disabled path is the shared
:data:`NULL` instance -- a :class:`NullInstrumentation` whose primitives
are no-ops and whose ``span`` hands back one reusable do-nothing context
manager.  A handful of no-op method calls per candidate fault is the
entire disabled-mode overhead, which keeps the hot candidate-ranking
loop within noise of the uninstrumented baseline (pinned by the
``bench_candidate_ranking`` acceptance threshold).

A module-level *active* instance (:func:`get_active` / :func:`use`)
lets entry points like the CLI switch instrumentation on for everything
constructed inside a ``with use(instr):`` block without threading the
object through every constructor by hand; library classes still accept
an explicit ``obs=`` override.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Instrumentation",
    "NullInstrumentation",
    "NULL",
    "TimerStat",
    "get_active",
    "set_active",
    "use",
]


class TimerStat:
    """Accumulated wall time and call count of one span path."""

    __slots__ = ("total_s", "count")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.count = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"total_s": self.total_s, "count": self.count}


class _SpanContext:
    """Reusable timing context for one instrumentation instance.

    Spans nest: entering pushes the name onto the instrumentation's
    path stack (forming the hierarchical key), exiting pops it and adds
    the elapsed wall time to that path's :class:`TimerStat`.  When a
    :class:`~repro.obs.trace.TraceRecorder` is attached to the
    instrumentation (``obs.tracer``), every span additionally becomes
    one trace event with an explicit parent id; the ``tracer is None``
    fast path keeps the untraced overhead at one attribute check.
    """

    __slots__ = ("_obs", "_name", "_path", "_t0")

    def __init__(self, obs: "Instrumentation", name: str) -> None:
        self._obs = obs
        self._name = name

    def __enter__(self) -> "_SpanContext":
        stack = self._obs._stack
        stack.append(self._name)
        self._path = "/".join(stack)
        tracer = self._obs.tracer
        if tracer is not None:
            tracer.begin(self._path)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        t1 = time.perf_counter()
        elapsed = t1 - self._t0
        path = self._path
        self._obs._stack.pop()
        stat = self._obs.timers.get(path)
        if stat is None:
            stat = self._obs.timers[path] = TimerStat()
        stat.total_s += elapsed
        stat.count += 1
        tracer = self._obs.tracer
        if tracer is not None:
            tracer.end(path, self._t0, t1)


class Instrumentation:
    """Per-run telemetry registry: hierarchical timers, counters, gauges."""

    enabled = True

    #: Optional :class:`~repro.obs.trace.TraceRecorder`.  A class-level
    #: default (rather than per-instance in ``__init__``) so
    #: :class:`NullInstrumentation` shares it without an ``__init__``
    #: of its own.
    tracer = None

    #: Optional :class:`~repro.obs.telemetry.TelemetryMonitor`.  Same
    #: class-level-None pattern as ``tracer``: the scoring pool checks
    #: this attribute to decide whether workers sample RSS/CPU per
    #: shard, and the monitor merges their series into worker lanes.
    telemetry = None

    def __init__(self) -> None:
        self.timers: Dict[str, TimerStat] = {}
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, object] = {}
        self._stack: List[str] = []

    # -- recording primitives -----------------------------------------
    def span(self, name: str) -> _SpanContext:
        """Time a phase; nested spans build ``/``-joined paths."""
        return _SpanContext(self, name)

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record a last-value gauge."""
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Record a high-watermark gauge."""
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    def observe_latency(self, name: str, seconds: float) -> None:
        """Record one observation into a named latency histogram.

        Histograms are created lazily on first observation
        (:class:`~repro.obs.slo.LatencyHistogram`, default log-spaced
        buckets) and are thread-safe, so server handler threads can
        share one registry.
        """
        hist = self.histograms.get(name)
        if hist is None:
            from .slo import LatencyHistogram

            hist = self.histograms.setdefault(name, LatencyHistogram())
        hist.observe(seconds)  # type: ignore[attr-defined]

    # -- reading ------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view of everything recorded so far (JSON-ready).

        The ``histograms`` key appears only when at least one latency
        observation was recorded, so snapshots of runs that never
        touch :meth:`observe_latency` keep their historical shape.
        """
        snap = {
            "timers": {k: v.as_dict() for k, v in self.timers.items()},
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }
        if self.histograms:
            snap["histograms"] = {
                k: v.snapshot() for k, v in self.histograms.items()  # type: ignore[attr-defined]
            }
        return snap

    def counters_since(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas against an earlier ``dict(self.counters)`` copy."""
        return {
            k: v - baseline.get(k, 0)
            for k, v in self.counters.items()
            if v != baseline.get(k, 0)
        }

    def reset(self) -> None:
        self.timers.clear()
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self._stack.clear()


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullInstrumentation(Instrumentation):
    """Disabled instrumentation: every primitive is a no-op."""

    enabled = False

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def incr(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def observe_latency(self, name: str, seconds: float) -> None:
        pass


#: The process-wide disabled instance.  Instrumented code holds a
#: reference to this when no registry is active, so the hot paths pay
#: only no-op method calls.
NULL = NullInstrumentation()

_active: Instrumentation = NULL


def get_active() -> Instrumentation:
    """The currently active registry (:data:`NULL` when none)."""
    return _active


def set_active(instr: Optional[Instrumentation]) -> Instrumentation:
    """Install ``instr`` as the active registry; returns the previous one."""
    global _active
    previous = _active
    _active = instr if instr is not None else NULL
    return previous


@contextmanager
def use(instr: Optional[Instrumentation]) -> Iterator[Instrumentation]:
    """Activate ``instr`` for the duration of a ``with`` block."""
    previous = set_active(instr)
    try:
        yield get_active()
    finally:
        set_active(previous)
