"""Self-time attribution over a run journal: ``repro profile RUN.jsonl``.

Where ``repro report`` renders *inclusive* span totals (each path's
wall time including its children), this view answers the profiling
questions those totals obscure:

* **exclusive (self) time** per span path -- a parent's total minus
  its direct children's totals, so ``greedy`` stops dwarfing
  ``greedy/rank`` just because it contains it.  The top-N table ranks
  by exclusive time, which is where optimization effort actually lands;
* **attribution coverage** -- top-level span totals summed against the
  run's elapsed wall clock.  The remainder is *unattributed* time
  (work running outside any span); the renderer flags it when coverage
  drops below :data:`ATTRIBUTION_TARGET_PCT`, because unattributed
  time is exactly the time no report can explain;
* **kernel throughput** -- the compiled kernel's pass-attribution
  counters (:mod:`repro.simulation.compiled`) reduced to bytes moved
  (uint64 words x 8) and bytes/second against the scoring span time;
* **peak-RSS timeline** -- the coordinator-lane ``telemetry`` samples
  as a time/RSS table with the peak marked;
* **per-worker utilization** -- CPU-seconds over wall-seconds between
  each worker's consecutive shipped samples, averaged per lane.

Everything reads from journal events alone (``skip_unknown`` load), so
a dead run's journal profiles exactly like a live one's.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Union

from .journal import JournalError, load_journal
from .report import collect_counters, collect_timers

__all__ = [
    "ATTRIBUTION_TARGET_PCT",
    "profile_events",
    "render_profile",
    "profile_from_file",
]

#: Minimum share of elapsed wall time the top-level spans must explain
#: before the profile stops flagging unattributed time.
ATTRIBUTION_TARGET_PCT = 90.0

#: Bytes per packed simulation word (the kernel's uint64 rows).
_WORD_BYTES = 8


def profile_events(events: Sequence[Dict], top: int = 12) -> Dict:
    """Reduce one journal event stream to the profile payload."""
    header = next((e for e in events if e.get("event") == "run_start"), None)
    summary = next((e for e in events if e.get("event") == "summary"), None)
    telemetry = [e for e in events if e.get("event") == "telemetry"]
    timers = collect_timers(events)
    counters = collect_counters(events)

    elapsed = _elapsed_seconds(summary, telemetry, timers)
    spans = _span_rows(timers, elapsed)
    attributed = sum(
        total for path, (total, _c) in timers.items() if "/" not in path
    )
    attributed_pct = 100.0 * attributed / elapsed if elapsed > 0 else 0.0

    return {
        "run": {
            "circuit": header.get("circuit") if header else None,
            "status": "complete" if summary is not None else "interrupted",
            "elapsed_s": elapsed,
        },
        "spans": spans[:top],
        "span_count": len(spans),
        "attribution": {
            "attributed_s": attributed,
            "unattributed_s": max(elapsed - attributed, 0.0),
            "attributed_pct": attributed_pct,
            "target_pct": ATTRIBUTION_TARGET_PCT,
            "flagged": attributed_pct < ATTRIBUTION_TARGET_PCT,
        },
        "kernel": _kernel_stats(counters, timers, elapsed),
        "rss_timeline": _rss_timeline(telemetry),
        "workers": _worker_utilization(telemetry),
    }


def render_profile(profile: Dict) -> str:
    """Text rendering of a :func:`profile_events` payload."""
    run = profile["run"]
    out: List[str] = [
        f"=== profile: {run['circuit'] or '?'} "
        f"({run['status']}, {run['elapsed_s']:.2f}s) ==="
    ]

    out.append("")
    out.append("--- self time (exclusive, top spans) ---")
    spans = profile["spans"]
    if spans:
        width = max(len(s["path"]) for s in spans)
        out.append(
            f"{'phase':<{width}}  {'self':>9}  {'wall%':>6}  "
            f"{'total':>9}  {'calls':>8}"
        )
        for s in spans:
            out.append(
                f"{s['path']:<{width}}  {_fmt_s(s['exclusive_s']):>9}  "
                f"{s['share_pct']:5.1f}%  {_fmt_s(s['total_s']):>9}  "
                f"{s['count']:>8}"
            )
        hidden = profile["span_count"] - len(spans)
        if hidden > 0:
            out.append(f"(+{hidden} more span path(s); raise --top to see them)")
    else:
        out.append("(no timing data recorded)")

    att = profile["attribution"]
    out.append("")
    out.append(
        f"attributed: {_fmt_s(att['attributed_s'])} of "
        f"{_fmt_s(run['elapsed_s'])} wall ({att['attributed_pct']:.1f}%), "
        f"unattributed {_fmt_s(att['unattributed_s'])}"
    )
    if att["flagged"]:
        out.append(
            f"WARNING: attribution below {att['target_pct']:.0f}% -- "
            f"{_fmt_s(att['unattributed_s'])} of wall time runs outside "
            f"every span"
        )

    kernel = profile["kernel"]
    if kernel is not None:
        out.append("")
        out.append("--- compiled kernel ---")
        out.append(
            f"passes {kernel['passes']:,}  rows {kernel['rows_touched']:,}  "
            f"words {kernel['words_moved']:,} "
            f"({kernel['bytes_moved'] / 1e6:.1f} MB)"
        )
        line = f"throughput {kernel['bytes_per_s'] / 1e6:,.1f} MB/s"
        if kernel.get("basis") is not None:
            line += f" (over {kernel['basis']})"
        out.append(line)
        if kernel.get("overlay_patches"):
            out.append(f"overlay patches applied: {kernel['overlay_patches']:,}")

    timeline = profile["rss_timeline"]
    if timeline["points"]:
        out.append("")
        out.append("--- RSS timeline (coordinator) ---")
        for t_s, rss in timeline["points"]:
            marker = "  <-- peak" if rss == timeline["peak_bytes"] else ""
            out.append(f"t={t_s:8.2f}s  {rss / 1e6:9.1f} MB{marker}")
        out.append(
            f"peak {timeline['peak_bytes'] / 1e6:.1f} MB over "
            f"{timeline['samples']} sample(s)"
        )

    workers = profile["workers"]
    if workers:
        out.append("")
        out.append("--- worker utilization ---")
        for w in workers:
            util = (
                f"{100.0 * w['utilization']:.0f}%"
                if w["utilization"] is not None
                else "n/a"
            )
            out.append(
                f"{w['lane']:<16}  util {util:>5}  "
                f"peak {w['peak_rss_bytes'] / 1e6:8.1f} MB  "
                f"samples {w['samples']}"
            )

    return "\n".join(out)


def profile_from_file(path: Union[str, os.PathLike], top: int = 12) -> Dict:
    """Load a journal (tolerantly) and build the profile payload."""
    events = load_journal(path, skip_unknown=True)
    if not events:
        raise JournalError(f"{path}: empty journal")
    return profile_events(events, top=top)


# ----------------------------------------------------------------------
def _elapsed_seconds(
    summary: Optional[Dict],
    telemetry: List[Dict],
    timers: Dict[str, tuple],
) -> float:
    if summary is not None and summary.get("elapsed_s"):
        return float(summary["elapsed_s"])
    coord = [e for e in telemetry if e.get("lane") == "coordinator"]
    if coord:
        return max(float(e.get("t_s", 0.0)) for e in coord)
    return sum(t for path, (t, _c) in timers.items() if "/" not in path)


def _span_rows(timers: Dict[str, tuple], elapsed: float) -> List[Dict]:
    """Exclusive-time rows, ranked by self time descending."""
    totals = {path: float(stat[0]) for path, stat in timers.items()}
    children: Dict[str, float] = {}
    for path, total in totals.items():
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            children[parent] = children.get(parent, 0.0) + total
    rows = [
        {
            "path": path,
            "total_s": total,
            "exclusive_s": max(total - children.get(path, 0.0), 0.0),
            "count": int(timers[path][1]),
        }
        for path, total in totals.items()
    ]
    for row in rows:
        row["share_pct"] = (
            100.0 * row["exclusive_s"] / elapsed if elapsed > 0 else 0.0
        )
    rows.sort(key=lambda r: (-r["exclusive_s"], r["path"]))
    return rows


def _kernel_stats(
    counters: Dict[str, int], timers: Dict[str, tuple], elapsed: float
) -> Optional[Dict]:
    words = counters.get("kernel.pass.words_moved", 0)
    if not words and not counters.get("kernel.pass.executions"):
        return None
    bytes_moved = words * _WORD_BYTES
    # Rate the kernel against the time actually spent scoring: the
    # deepest span whose subtree contains the simulate calls.
    basis_path = None
    basis_s = elapsed
    for candidate in ("greedy/rank", "greedy", "prepass"):
        if candidate in timers:
            basis_path = candidate
            basis_s = float(timers[candidate][0])
            break
    return {
        "passes": counters.get("kernel.pass.executions", 0),
        "rows_touched": counters.get("kernel.pass.rows_touched", 0),
        "words_moved": words,
        "bytes_moved": bytes_moved,
        "bytes_per_s": bytes_moved / basis_s if basis_s > 0 else 0.0,
        "basis": basis_path,
        "overlay_patches": counters.get("kernel.overlay_patches", 0),
    }


def _rss_timeline(telemetry: List[Dict], max_points: int = 16) -> Dict:
    coord = [e for e in telemetry if e.get("lane") == "coordinator"]
    coord.sort(key=lambda e: e.get("t_s", 0.0))
    points = [
        (float(e.get("t_s", 0.0)), int(e.get("rss_bytes", 0))) for e in coord
    ]
    shown = points
    if len(points) > max_points:
        # Evenly thin the series but always keep first, last and peak.
        step = len(points) / float(max_points)
        keep = {int(i * step) for i in range(max_points)}
        keep.add(len(points) - 1)
        keep.add(max(range(len(points)), key=lambda i: points[i][1]))
        shown = [points[i] for i in sorted(keep)]
    return {
        "points": shown,
        "samples": len(points),
        "peak_bytes": max((rss for _t, rss in points), default=0),
    }


def _worker_utilization(telemetry: List[Dict]) -> List[Dict]:
    lanes: Dict[str, List[Dict]] = {}
    for e in telemetry:
        lane = e.get("lane", "")
        if isinstance(lane, str) and lane.startswith("worker-"):
            lanes.setdefault(lane, []).append(e)
    rows = []
    for lane in sorted(lanes):
        samples = lanes[lane]
        utils = [
            float(e["utilization"]) for e in samples if "utilization" in e
        ]
        rows.append(
            {
                "lane": lane,
                "samples": len(samples),
                "peak_rss_bytes": max(
                    (int(e.get("rss_bytes", 0)) for e in samples), default=0
                ),
                "utilization": sum(utils) / len(utils) if utils else None,
            }
        )
    return rows


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"
