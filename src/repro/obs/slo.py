"""Latency histograms and SLO summaries (p50/p90/p99 over fixed buckets).

The job server needs latency *distributions*, not averages: a queue
that serves most jobs instantly but parks every tenth one for a minute
has a fine mean and a terrible p99.  This module is the stdlib-only
histogram layer behind that:

* :class:`LatencyHistogram` -- a thread-safe fixed-bucket histogram
  (log-spaced bounds, 1 ms to ~35 min by default).  Fixed buckets make
  two properties trivial that exact-sample reservoirs lose: histograms
  **merge** by adding counts (scrapes aggregate across servers), and
  memory is O(buckets) no matter how many jobs flow through.  The
  price is that quantiles are estimates -- exact only up to bucket
  resolution (~2x between neighbours) -- which is the standard
  Prometheus trade and plenty for SLO gating.
* OpenMetrics round trip -- histograms render as standard cumulative
  ``_bucket{le="..."}``/``_count``/``_sum`` families (via
  :func:`~repro.obs.metrics_export.render_openmetrics`), and
  :func:`parse_openmetrics_histograms` reads them back from any
  scrape, so ``repro slo`` can summarize a live ``/v1/metrics``
  endpoint or a saved ``.prom`` file identically.
* SLO summarization and gating -- :func:`summarize_histograms` turns
  parsed families into p50/p90/p99 rows, :func:`render_slo` prints
  the table, and :func:`parse_fail_over` / :func:`check_fail_over`
  implement the ``repro slo --fail-over e2e_p99=2.5`` CI gate.

The service records four distributions (see DESIGN.md §14):
``slo.queue_wait_seconds``, ``slo.attempt_seconds``,
``slo.e2e_seconds`` and ``slo.cache_hit_seconds``, all through
:meth:`~repro.obs.core.Instrumentation.observe_latency`.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKET_BOUNDS",
    "DEFAULT_QUANTILES",
    "LatencyHistogram",
    "check_fail_over",
    "parse_fail_over",
    "parse_openmetrics_histograms",
    "quantile_from_buckets",
    "quantile_key",
    "render_slo",
    "summarize_histograms",
]

#: Default bucket upper bounds in seconds: log-spaced powers of two
#: from 1 ms to ~35 minutes (a final implicit +Inf bucket catches the
#: rest).  Factor-of-two spacing bounds the quantile estimation error
#: at one octave -- fine-grained enough to tell a 50 ms queue wait
#: from a 5 s one, coarse enough that a histogram is 22 integers.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    0.001 * 2**i for i in range(22)
)

#: Quantiles ``repro slo`` reports by default.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


class LatencyHistogram:
    """Thread-safe fixed-bucket latency histogram.

    ``bounds`` are the bucket *upper* bounds (inclusive, seconds),
    strictly increasing; observations above the last bound land in the
    implicit ``+Inf`` overflow bucket.  All mutation is lock-guarded,
    so one histogram can be shared by every handler thread of the job
    server.
    """

    __slots__ = ("bounds", "_counts", "_overflow", "_sum", "_count", "_lock")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self._counts = [0] * len(bounds)
        self._overflow = 0
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------
    def observe(self, seconds: float) -> None:
        """Record one latency observation (negative clamps to 0)."""
        value = max(float(seconds), 0.0)
        idx = self._bucket_index(value)
        with self._lock:
            if idx is None:
                self._overflow += 1
            else:
                self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def _bucket_index(self, value: float) -> Optional[int]:
        # Linear scan is fine: ~22 buckets, and the common case (small
        # latencies) exits early.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return None

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s counts into this histogram (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        with other._lock:
            counts = list(other._counts)
            overflow, total, count = other._overflow, other._sum, other._count
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._overflow += overflow
            self._sum += total
            self._count += count

    # -- reading -------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile in seconds (``None`` when empty)."""
        snap = self.snapshot()
        return quantile_from_buckets(snap["buckets"], q)

    def snapshot(self) -> Dict:
        """JSON-ready cumulative view (the OpenMetrics wire shape).

        ``buckets`` is ``[[le, cumulative_count], ...]`` ending with
        the ``+Inf`` bucket whose count equals ``count``.
        """
        with self._lock:
            counts = list(self._counts)
            overflow, total, count = self._overflow, self._sum, self._count
        buckets: List[List] = []
        running = 0
        for bound, c in zip(self.bounds, counts):
            running += c
            buckets.append([bound, running])
        buckets.append([math.inf, running + overflow])
        return {"buckets": buckets, "sum": total, "count": count}


def quantile_from_buckets(
    buckets: Sequence[Sequence[float]], q: float
) -> Optional[float]:
    """Estimated quantile from cumulative ``(le, count)`` buckets.

    Linear interpolation inside the bucket that crosses the target
    rank (the Prometheus ``histogram_quantile`` rule); the lower edge
    of the first bucket is 0 and a quantile landing in the ``+Inf``
    bucket reports the last finite bound (there is no upper edge to
    interpolate toward).  Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not buckets:
        return None
    total = buckets[-1][1]
    if total <= 0:
        return None
    rank = q * total
    prev_bound, prev_cum = 0.0, 0
    for bound, cum in buckets:
        if cum >= rank:
            if math.isinf(bound):
                return prev_bound
            if cum == prev_cum:  # rank == 0 edge: empty leading bucket
                return float(bound)
            frac = (rank - prev_cum) / (cum - prev_cum)
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_cum = float(bound), cum
    return prev_bound


# ----------------------------------------------------------------------
# OpenMetrics scrape parsing (the read half of the round trip)
# ----------------------------------------------------------------------
_TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) histogram$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)"
)
_LE_RE = re.compile(r'le="([^"]+)"')


def _parse_le(raw: str) -> float:
    return math.inf if raw == "+Inf" else float(raw)


def parse_openmetrics_histograms(text: str) -> Dict[str, Dict]:
    """Extract every histogram family from an OpenMetrics exposition.

    Returns ``{family_name: {"buckets": [[le, cum], ...], "sum": s,
    "count": n}}`` with buckets sorted by bound -- the same shape
    :meth:`LatencyHistogram.snapshot` produces, so
    :func:`quantile_from_buckets` works on either.
    """
    families: Dict[str, Dict] = {}
    declared: List[str] = []
    for line in text.splitlines():
        m = _TYPE_RE.match(line)
        if m:
            declared.append(m.group(1))
            families[m.group(1)] = {"buckets": [], "sum": 0.0, "count": 0}
            continue
        if line.startswith("#") or not line:
            continue
        sm = _SAMPLE_RE.match(line)
        if sm is None:
            continue
        name, value = sm.group("name"), sm.group("value")
        for family in declared:
            if name == f"{family}_bucket":
                le = _LE_RE.search(sm.group("labels") or "")
                if le:
                    families[family]["buckets"].append(
                        [_parse_le(le.group(1)), float(value)]
                    )
                break
            if name == f"{family}_count":
                families[family]["count"] = int(float(value))
                break
            if name == f"{family}_sum":
                families[family]["sum"] = float(value)
                break
    for data in families.values():
        data["buckets"].sort(key=lambda b: b[0])
    return {k: v for k, v in families.items() if v["buckets"]}


# ----------------------------------------------------------------------
# SLO summaries and the --fail-over gate
# ----------------------------------------------------------------------
def summarize_histograms(
    families: Dict[str, Dict],
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> Dict[str, Dict]:
    """p-quantile/count/mean rows per histogram family.

    ``families`` maps name -> the cumulative-bucket shape (parsed
    scrape or :meth:`LatencyHistogram.snapshot`).  Quantile keys are
    ``p50``-style (``0.5 -> "p50"``, ``0.999 -> "p99.9"``).
    """
    summary: Dict[str, Dict] = {}
    for name in sorted(families):
        data = families[name]
        count = int(data.get("count") or 0)
        total = float(data.get("sum") or 0.0)
        row: Dict = {
            "count": count,
            "sum_s": total,
            "mean_s": (total / count) if count else None,
        }
        for q in quantiles:
            row[quantile_key(q)] = quantile_from_buckets(data["buckets"], q)
        summary[name] = row
    return summary


def quantile_key(q: float) -> str:
    """``0.5 -> "p50"``, ``0.99 -> "p99"``, ``0.999 -> "p99.9"``."""
    pct = q * 100.0
    if pct == int(pct):
        return f"p{int(pct)}"
    return f"p{pct:g}"


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1.0:
        return f"{value * 1000:.1f}ms"
    return f"{value:.3f}s"


def render_slo(
    summary: Dict[str, Dict],
    quantiles: Sequence[float] = DEFAULT_QUANTILES,
) -> str:
    """The ``repro slo`` table: one row per latency family."""
    qkeys = [quantile_key(q) for q in quantiles]
    header = ["metric", "count", "mean"] + qkeys
    rows = [header]
    for name, row in summary.items():
        rows.append(
            [name, str(row["count"]), _fmt_seconds(row["mean_s"])]
            + [_fmt_seconds(row.get(k)) for k in qkeys]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(
                cell.ljust(w) if j == 0 else cell.rjust(w)
                for j, (cell, w) in enumerate(zip(row, widths))
            ).rstrip()
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


_GATE_RE = re.compile(r"^(?P<metric>.+)_p(?P<pct>\d+(?:\.\d+)?)$")


def parse_fail_over(specs: Iterable[str]) -> List[Tuple[str, float, float]]:
    """Parse ``--fail-over`` gate specs.

    Each spec is ``<metric-substring>_p<PCT>=<seconds>`` (e.g.
    ``e2e_p99=2.5``: the p99 of every histogram family whose name
    contains ``e2e`` must stay at or under 2.5 s).  Returns
    ``(metric_substring, quantile, limit_seconds)`` tuples; raises
    :class:`ValueError` on a malformed spec.
    """
    gates: List[Tuple[str, float, float]] = []
    for spec in specs:
        name, sep, limit_text = spec.partition("=")
        m = _GATE_RE.match(name.strip())
        if not sep or m is None:
            raise ValueError(
                f"bad --fail-over spec {spec!r} "
                f"(expected NAME_pNN=SECONDS, e.g. e2e_p99=2.5)"
            )
        try:
            limit = float(limit_text)
        except ValueError:
            raise ValueError(
                f"bad --fail-over limit in {spec!r}: {limit_text!r}"
            ) from None
        quantile = float(m.group("pct")) / 100.0
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"bad --fail-over percentile in {spec!r}")
        gates.append((m.group("metric"), quantile, limit))
    return gates


def check_fail_over(
    families: Dict[str, Dict],
    gates: Sequence[Tuple[str, float, float]],
) -> List[str]:
    """Evaluate gates against parsed histograms; returns violations.

    A gate whose metric substring matches no family is itself a
    violation -- a typo'd gate must not silently pass CI.
    """
    violations: List[str] = []
    for metric, q, limit in gates:
        matched = [name for name in families if metric in name]
        if not matched:
            violations.append(
                f"{metric}_{quantile_key(q)}: no histogram matching "
                f"{metric!r} in the exposition"
            )
            continue
        for name in matched:
            value = quantile_from_buckets(families[name]["buckets"], q)
            if value is not None and value > limit:
                violations.append(
                    f"{name} {quantile_key(q)} = {_fmt_seconds(value)} "
                    f"exceeds the {_fmt_seconds(limit)} limit"
                )
    return violations
