"""Observability layer: instrumentation, journal, trace, progress, analytics.

See DESIGN.md §7 and §9.  ``repro.obs.core`` is the zero-dependency
span/counter/gauge registry the hot paths record into;
``repro.obs.journal`` is the per-run JSONL event stream;
``repro.obs.report`` renders the ``repro report`` profiling view from a
journal.  ``repro.obs.trace`` exports span activity as a Chrome trace
(Perfetto-loadable, per-worker lanes); ``repro.obs.progress`` is the
live heartbeat (TTY line + atomic ``progress.json``);
``repro.obs.compare`` diffs two run journals iteration-by-iteration and
``repro.obs.trends`` tracks benchmark history with a trailing-median
regression gate.  ``repro.obs.quality`` (DESIGN.md §10) is the
statistical-quality layer: Wilson-score confidence intervals for
sampled ER estimates, per-iteration estimator-calibration events, and
the ``repro audit`` provenance trail.  ``repro.obs.telemetry``
(DESIGN.md §12) is the background resource sampler (RSS/CPU/throughput
lanes feeding journal-v4 ``telemetry`` events and trace counter
tracks); ``repro.obs.profile`` renders the ``repro profile`` self-time
attribution view; ``repro.obs.metrics_export`` is the
OpenMetrics/Prometheus text surface (``repro report --format
openmetrics`` and the heartbeat's ``telemetry.prom``).
``repro.obs.slo`` (DESIGN.md §14) is the latency-SLO layer: the
mergeable log-bucketed :class:`~repro.obs.slo.LatencyHistogram`, the
OpenMetrics histogram parser, and the quantile summary / ``--fail-over``
gate logic behind ``repro slo``.  ``repro.obs.flight`` (DESIGN.md §15)
is the failure-mode layer: the bounded ring-buffer
:class:`~repro.obs.flight.FlightRecorder` flushing atomic crash
bundles, the in-process :class:`~repro.obs.flight.StallWatchdog`,
normalized-traceback error fingerprints, and the postmortem / fleet
error-cluster renderers behind ``repro postmortem`` / ``repro errors``.
"""

from .compare import compare_files, compare_runs, render_compare
from .flight import (
    BUNDLE_DIRNAME,
    DEFAULT_CAPACITY,
    STACKS_FILENAME,
    FlightRecorder,
    StallWatchdog,
    cluster_errors,
    error_fingerprint,
    fingerprint_key,
    fingerprint_text,
    job_dir_error_record,
    load_bundle,
    normalize_traceback,
    package_bundle,
    render_error_clusters,
    render_postmortem,
    scan_job_errors,
)
from .core import (
    NULL,
    Instrumentation,
    NullInstrumentation,
    TimerStat,
    get_active,
    set_active,
    use,
)
from .journal import (
    JOURNAL_VERSION,
    REQUIRED_KEYS,
    JournalError,
    RunJournal,
    load_journal,
    read_journal,
    validate_event,
)
from .metrics_export import (
    journal_openmetrics,
    render_openmetrics,
    validate_openmetrics,
)
from .profile import (
    ATTRIBUTION_TARGET_PCT,
    profile_events,
    profile_from_file,
    render_profile,
)
from .progress import ProgressReporter
from .quality import (
    DEFAULT_Z,
    audit_events,
    audit_file,
    calibration_event,
    er_interval,
    exact_er_check,
    render_audit,
    wilson_interval,
)
from .report import (
    collect_counters,
    collect_gauges,
    collect_timers,
    render_report,
    render_snapshot,
    report_as_dict,
    report_from_file,
)
from .slo import (
    DEFAULT_BUCKET_BOUNDS,
    DEFAULT_QUANTILES,
    LatencyHistogram,
    check_fail_over,
    parse_fail_over,
    parse_openmetrics_histograms,
    quantile_from_buckets,
    render_slo,
    summarize_histograms,
)
from .telemetry import (
    TelemetryMonitor,
    cpu_seconds,
    sample_rss_bytes,
    worker_sample,
)
from .trace import (
    TraceRecorder,
    chrome_trace_from_spans,
    to_chrome_trace,
    write_chrome_trace,
)
from .trends import (
    TrendRegression,
    append_history,
    detect_regressions,
    load_bench_file,
    read_history,
)

__all__ = [
    "Instrumentation",
    "NullInstrumentation",
    "NULL",
    "TimerStat",
    "get_active",
    "set_active",
    "use",
    "JOURNAL_VERSION",
    "REQUIRED_KEYS",
    "JournalError",
    "RunJournal",
    "read_journal",
    "load_journal",
    "validate_event",
    "render_report",
    "render_snapshot",
    "report_as_dict",
    "report_from_file",
    "collect_timers",
    "collect_counters",
    "collect_gauges",
    "TraceRecorder",
    "chrome_trace_from_spans",
    "to_chrome_trace",
    "write_chrome_trace",
    "DEFAULT_BUCKET_BOUNDS",
    "DEFAULT_QUANTILES",
    "LatencyHistogram",
    "quantile_from_buckets",
    "parse_openmetrics_histograms",
    "summarize_histograms",
    "render_slo",
    "parse_fail_over",
    "check_fail_over",
    "ProgressReporter",
    "TelemetryMonitor",
    "sample_rss_bytes",
    "cpu_seconds",
    "worker_sample",
    "render_openmetrics",
    "journal_openmetrics",
    "validate_openmetrics",
    "ATTRIBUTION_TARGET_PCT",
    "profile_events",
    "profile_from_file",
    "render_profile",
    "compare_runs",
    "compare_files",
    "render_compare",
    "TrendRegression",
    "load_bench_file",
    "read_history",
    "append_history",
    "detect_regressions",
    "DEFAULT_Z",
    "wilson_interval",
    "er_interval",
    "calibration_event",
    "audit_events",
    "audit_file",
    "render_audit",
    "exact_er_check",
    "BUNDLE_DIRNAME",
    "DEFAULT_CAPACITY",
    "STACKS_FILENAME",
    "FlightRecorder",
    "StallWatchdog",
    "cluster_errors",
    "error_fingerprint",
    "fingerprint_key",
    "fingerprint_text",
    "job_dir_error_record",
    "load_bundle",
    "normalize_traceback",
    "package_bundle",
    "render_error_clusters",
    "render_postmortem",
    "scan_job_errors",
]
