"""Observability layer: instrumentation core, run journal, profiling report.

See DESIGN.md §7.  ``repro.obs.core`` is the zero-dependency span/
counter/gauge registry the hot paths record into; ``repro.obs.journal``
is the per-run JSONL event stream; ``repro.obs.report`` renders the
``repro report`` profiling view from a journal.
"""

from .core import (
    NULL,
    Instrumentation,
    NullInstrumentation,
    TimerStat,
    get_active,
    set_active,
    use,
)
from .journal import (
    JOURNAL_VERSION,
    REQUIRED_KEYS,
    JournalError,
    RunJournal,
    load_journal,
    read_journal,
    validate_event,
)
from .report import render_report, render_snapshot, report_from_file

__all__ = [
    "Instrumentation",
    "NullInstrumentation",
    "NULL",
    "TimerStat",
    "get_active",
    "set_active",
    "use",
    "JOURNAL_VERSION",
    "REQUIRED_KEYS",
    "JournalError",
    "RunJournal",
    "read_journal",
    "load_journal",
    "validate_event",
    "render_report",
    "render_snapshot",
    "report_from_file",
]
