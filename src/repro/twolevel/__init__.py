"""Two-level (SOP) synthesis: exact Quine-McCluskey + the approximate
variant of the authors' prior work (paper ref [8])."""

from .quine import Cube, SopCover, minimize, prime_implicants
from .approx import ApproxSopResult, approx_minimize
from .circuit_io import sop_to_circuit, truth_table_of

__all__ = [
    "Cube",
    "SopCover",
    "minimize",
    "prime_implicants",
    "ApproxSopResult",
    "approx_minimize",
    "sop_to_circuit",
    "truth_table_of",
]
