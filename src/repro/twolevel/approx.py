"""Approximate two-level synthesis (the paper's ref [8] rebuilt).

Shin & Gupta's DATE 2010 predecessor minimizes a *two-level* circuit
under an error-rate budget: output values may be flipped for up to
``budget`` input combinations when doing so lets larger cubes (fewer
literals) cover the function.  This module rebuilds that idea on the
Quine-McCluskey substrate:

* **0 -> 1 flips**: treating selected OFF-minterms as don't-cares lets
  primes grow across them;
* **1 -> 0 flips**: dropping selected ON-minterms removes the need to
  cover them at all.

The search is greedy over candidate flip sets implied by the prime
structure: each prime of the *relaxed* function (ON + all OFF treated
as DC) defines a candidate "grow into these OFF-minterms" move, and
each expensive ON-minterm (covered only by large-literal primes)
defines a candidate drop.  Moves are ranked by literal savings per
error and applied while the budget lasts; the exact minimizer then
runs on the modified function.

The result records the exact error rate (flips / 2**n), so callers can
verify the budget (the property tests do).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .quine import Cube, SopCover, minimize, prime_implicants

__all__ = ["ApproxSopResult", "approx_minimize"]


@dataclass
class ApproxSopResult:
    """Outcome of one approximate two-level synthesis run."""

    n: int
    cover: SopCover
    exact_cover: SopCover
    flipped_0_to_1: Set[int] = field(default_factory=set)
    flipped_1_to_0: Set[int] = field(default_factory=set)

    @property
    def num_errors(self) -> int:
        return len(self.flipped_0_to_1) + len(self.flipped_1_to_0)

    @property
    def error_rate(self) -> float:
        return self.num_errors / (1 << self.n)

    @property
    def literals_saved(self) -> int:
        return self.exact_cover.num_literals - self.cover.num_literals

    @property
    def literal_reduction_pct(self) -> float:
        base = self.exact_cover.num_literals
        return 100.0 * self.literals_saved / base if base else 0.0


def approx_minimize(
    n: int,
    on_set: Iterable[int],
    dc_set: Iterable[int] = (),
    max_errors: int = 0,
    allow_drops: bool = True,
    allow_grows: bool = True,
) -> ApproxSopResult:
    """Minimize with up to ``max_errors`` deliberate output flips.

    ``max_errors`` bounds the total number of input combinations whose
    output may change (ER budget x 2**n).  With a zero budget the
    result equals exact minimization.
    """
    if max_errors < 0:
        raise ValueError("max_errors must be non-negative")
    on = set(on_set)
    dc = set(dc_set)
    universe = set(range(1 << n))
    off = universe - on - dc
    exact = minimize(n, on, dc)
    if max_errors == 0 or not on:
        return ApproxSopResult(n=n, cover=exact, exact_cover=exact)

    current_on = set(on)
    flipped01: Set[int] = set()
    flipped10: Set[int] = set()
    budget = max_errors
    best_cover = exact

    improved = True
    while improved and budget > 0:
        improved = False
        base_cover = minimize(n, current_on, dc)
        base_cost = base_cover.num_literals
        candidates: List[Tuple[float, str, Set[int]]] = []

        if allow_grows:
            # primes of the fully relaxed function show where growing
            # across OFF-minterms buys literals
            relaxed = prime_implicants(n, current_on, dc | off)
            for p in relaxed:
                eat = set(p.minterms()) & off - flipped01
                if not eat or len(eat) > budget:
                    continue
                trial = minimize(n, current_on | eat, dc)
                saved = base_cost - trial.num_literals
                if saved > 0:
                    candidates.append((saved / len(eat), "grow", eat))

        if allow_drops:
            # dropping an ON-minterm that only expensive primes cover
            for m in sorted(current_on):
                trial = minimize(n, current_on - {m}, dc)
                saved = base_cost - trial.num_literals
                if saved > 0:
                    candidates.append((float(saved), "drop", {m}))

        if not candidates:
            break
        candidates.sort(key=lambda t: -t[0])
        _gain, kind, flip = candidates[0]
        if len(flip) > budget:
            break
        if kind == "grow":
            current_on |= flip
            flipped01 |= flip
        else:
            current_on -= flip
            flipped10 |= flip
        budget -= len(flip)
        best_cover = minimize(n, current_on, dc)
        improved = True

    return ApproxSopResult(
        n=n,
        cover=best_cover,
        exact_cover=exact,
        flipped_0_to_1=flipped01,
        flipped_1_to_0=flipped10,
    )
