"""Bridges between two-level covers and gate-level circuits.

``sop_to_circuit`` synthesizes an AND-OR netlist from a cover so the
multi-level machinery (simulation, metrics, further simplification)
can run on two-level results; ``truth_table_of`` extracts a
single-output truth table from a small circuit so the two-level flow
can consume multi-level functions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..circuit import Circuit, CircuitBuilder
from ..simulation.logicsim import LogicSimulator
from ..simulation.vectors import exhaustive_vectors
from .quine import Cube, SopCover

__all__ = ["sop_to_circuit", "truth_table_of"]


def sop_to_circuit(
    cover: SopCover,
    name: str = "sop",
    input_names: Optional[List[str]] = None,
) -> Circuit:
    """AND-OR netlist of a cover (inverters shared per variable)."""
    b = CircuitBuilder(name)
    n = cover.n
    ins = [b.input(input_names[i] if input_names else f"x{i}") for i in range(n)]
    inverted: dict = {}

    def lit(i: int, positive: bool) -> str:
        if positive:
            return ins[i]
        if i not in inverted:
            inverted[i] = b.NOT(ins[i])
        return inverted[i]

    terms: List[str] = []
    for cube in cover.cubes:
        lits = [
            lit(i, bool((cube.value >> i) & 1))
            for i in range(n)
            if not (cube.mask >> i) & 1
        ]
        if not lits:  # tautological cube
            terms = [b.const(1)]
            break
        terms.append(b.AND(*lits) if len(lits) > 1 else lits[0])
    if not terms:
        out = b.const(0)
    elif len(terms) == 1:
        out = b.BUF(terms[0], name=f"{name}_out")
    else:
        out = b.OR(*terms, name=f"{name}_out")
    b.output(out)
    return b.build()


def truth_table_of(circuit: Circuit, output: Optional[str] = None) -> Tuple[int, Set[int]]:
    """(num_inputs, ON-set) of one output of a small circuit."""
    out = output or circuit.outputs[0]
    n = len(circuit.inputs)
    vecs = exhaustive_vectors(n)
    values = LogicSimulator(circuit).run(vecs).values_for(out)
    on = {m for m in range(1 << n) if values[m]}
    return n, on
