"""Exact two-level (SOP) minimization: Quine-McCluskey + cover selection.

The substrate for the approximate two-level synthesis of the authors'
prior work (the paper's ref [8], DATE 2010).  Functions are given as
ON-set/DC-set minterm collections over n variables; minimization runs
the classic flow:

1. iterative merging of implicants differing in one literal
   (Quine-McCluskey prime generation),
2. essential-prime extraction,
3. greedy cover of the remaining ON-set (a Petrick-style exact cover is
   exponential; the greedy choice is the standard practical variant).

Cubes are (value, mask) pairs: ``mask`` bits are don't-cares, and a
minterm m is covered iff ``m & ~mask == value``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Cube", "prime_implicants", "minimize", "SopCover"]


@dataclass(frozen=True, order=True)
class Cube:
    """An implicant over n variables: fixed ``value`` bits + DC ``mask``."""

    value: int
    mask: int
    n: int

    def __post_init__(self) -> None:
        if self.value & self.mask:
            raise ValueError("cube value must be 0 on don't-care positions")

    def covers(self, minterm: int) -> bool:
        return (minterm & ~self.mask) & ((1 << self.n) - 1) == self.value

    def minterms(self) -> Iterable[int]:
        """All minterms contained in the cube."""
        free = [i for i in range(self.n) if (self.mask >> i) & 1]
        for k in range(1 << len(free)):
            m = self.value
            for j, bit in enumerate(free):
                if (k >> j) & 1:
                    m |= 1 << bit
            yield m

    @property
    def num_literals(self) -> int:
        """Literals in the product term (fixed positions)."""
        return self.n - bin(self.mask).count("1")

    def __str__(self) -> str:
        out = []
        for i in reversed(range(self.n)):
            if (self.mask >> i) & 1:
                out.append("-")
            else:
                out.append("1" if (self.value >> i) & 1 else "0")
        return "".join(out)


def prime_implicants(
    n: int, on_set: Iterable[int], dc_set: Iterable[int] = ()
) -> List[Cube]:
    """All prime implicants of the function (ON plus don't-care set)."""
    care = set(on_set)
    allowed = care | set(dc_set)
    if not allowed:
        return []
    current: Set[Tuple[int, int]] = {(m, 0) for m in allowed}
    primes: Set[Tuple[int, int]] = set()
    while current:
        merged: Set[Tuple[int, int]] = set()
        used: Set[Tuple[int, int]] = set()
        by_mask: Dict[int, List[Tuple[int, int]]] = {}
        for cube in current:
            by_mask.setdefault(cube[1], []).append(cube)
        for mask, group in by_mask.items():
            group_set = set(group)
            for value, _ in group:
                for bit in range(n):
                    b = 1 << bit
                    if mask & b or value & b:
                        continue
                    partner = (value | b, mask)
                    if partner in group_set:
                        merged.add((value, mask | b))
                        used.add((value, mask))
                        used.add(partner)
        primes |= current - used
        current = merged
    return sorted(Cube(v, m, n) for v, m in primes)


@dataclass
class SopCover:
    """A sum-of-products cover."""

    n: int
    cubes: List[Cube]

    @property
    def num_terms(self) -> int:
        return len(self.cubes)

    @property
    def num_literals(self) -> int:
        return sum(c.num_literals for c in self.cubes)

    def evaluate(self, minterm: int) -> int:
        return int(any(c.covers(minterm) for c in self.cubes))

    def on_set(self) -> Set[int]:
        out: Set[int] = set()
        for c in self.cubes:
            out |= set(c.minterms())
        return out

    def __str__(self) -> str:
        return " + ".join(str(c) for c in self.cubes) if self.cubes else "0"


def minimize(
    n: int, on_set: Iterable[int], dc_set: Iterable[int] = ()
) -> SopCover:
    """Minimized SOP cover of the ON-set (don't-cares exploited freely).

    Essential primes first, then greedy selection by (coverage,
    -literals) until every ON-minterm is covered.
    """
    on = set(on_set)
    if not on:
        return SopCover(n, [])
    primes = prime_implicants(n, on, dc_set)
    coverage: Dict[Cube, Set[int]] = {p: set(p.minterms()) & on for p in primes}
    chosen: List[Cube] = []
    remaining = set(on)

    # essential primes: minterms covered by exactly one prime
    for m in list(on):
        holders = [p for p in primes if m in coverage[p]]
        if len(holders) == 1 and holders[0] not in chosen:
            chosen.append(holders[0])
    for p in chosen:
        remaining -= coverage[p]

    while remaining:
        best = max(
            primes,
            key=lambda p: (len(coverage[p] & remaining), -p.num_literals),
        )
        gain = coverage[best] & remaining
        if not gain:
            raise RuntimeError("cover construction failed (unreachable)")
        chosen.append(best)
        remaining -= gain
    return SopCover(n, sorted(set(chosen)))
