"""Wide adder / magnitude comparator / parity unit (the c7552-like core).

c7552 is a 32-bit adder/comparator with input parity checking per the
ISCAS85 reverse engineering.  Its data outputs form a 33-bit sum whose
top weight is 2**32, which is why the paper sweeps *tiny* %RS values
(1e-7 ... 1e-6) for it: one part in 10**7 of RS_max is already a
deviation of hundreds at the numeric level.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..circuit import Bus, CircuitBuilder
from .adders import carry_lookahead_adder

__all__ = ["magnitude_comparator", "build_adder_comparator"]


def magnitude_comparator(
    b: CircuitBuilder, a: Sequence[str], x: Sequence[str]
) -> Tuple[str, str, str]:
    """Unsigned comparator; returns (a_gt_x, a_eq_x, a_lt_x).

    Built MSB-down: at each bit, ``gt`` fires when all higher bits are
    equal and ``a_i > x_i``.
    """
    if len(a) != len(x):
        raise ValueError("operand widths differ")
    eq_bits = [b.XNOR(ai, xi) for ai, xi in zip(a, x)]
    gt_terms: List[str] = []
    lt_terms: List[str] = []
    for i in reversed(range(len(a))):
        higher = eq_bits[i + 1 :]
        gt_i = b.AND(a[i], b.NOT(x[i]))
        lt_i = b.AND(b.NOT(a[i]), x[i])
        if higher:
            prefix = b.AND(*higher) if len(higher) > 1 else higher[0]
            gt_terms.append(b.AND(prefix, gt_i))
            lt_terms.append(b.AND(prefix, lt_i))
        else:
            gt_terms.append(gt_i)
            lt_terms.append(lt_i)
    gt = b.OR(*gt_terms) if len(gt_terms) > 1 else gt_terms[0]
    lt = b.OR(*lt_terms) if len(lt_terms) > 1 else lt_terms[0]
    eq = b.AND(*eq_bits) if len(eq_bits) > 1 else eq_bits[0]
    return gt, eq, lt


def build_adder_comparator(
    bits: int = 32,
    name: Optional[str] = None,
    parity_groups: int = 4,
):
    """Wide adder + comparator + input parity checkers.

    Data outputs: the (bits+1)-bit sum, weights 1 ... 2**bits.
    Control outputs: greater/equal/less comparison flags and one parity
    check line per input group.
    """
    b = CircuitBuilder(name or f"addcmp{bits}")
    a = b.input_bus("a", bits)
    x = b.input_bus("b", bits)
    total = carry_lookahead_adder(b, a, x)
    b.output_bus(total)
    gt, eq, lt = magnitude_comparator(b, a, x)
    b.output(gt, weight=1, is_data=False)
    b.output(eq, weight=1, is_data=False)
    b.output(lt, weight=1, is_data=False)
    group = max(1, bits // max(1, parity_groups))
    for start in range(0, bits, group):
        chunk = list(a[start : start + group]) + list(x[start : start + group])
        b.output(b.parity(chunk), weight=1, is_data=False)
    return b.build()
