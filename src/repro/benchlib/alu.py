"""ALU generators in the style of the ISCAS85 cores.

Hansen, Yalcin & Hayes ("Unveiling the ISCAS-85 Benchmarks", ref [17]
of the paper) reverse-engineered the benchmark netlists into high-level
models: c880 is an 8-bit ALU, c3540 an 8-bit ALU with BCD and control
logic, c5315 a 9-bit ALU computing two arithmetic channels with parity.
The generators here produce gate-level ALUs with the same ingredients
-- add/subtract datapaths, logic-op channels, function decoding, and
status/parity control outputs -- which is what the Table II experiment
needs: arithmetic data outputs with exponential weights embedded in
control logic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..circuit import Bus, CircuitBuilder, GateType
from .adders import carry_lookahead_adder, ripple_carry_adder

__all__ = ["alu_slice", "build_alu"]


def alu_slice(
    b: CircuitBuilder,
    a: Sequence[str],
    x: Sequence[str],
    op_onehot: Sequence[str],
    adder: str = "cla",
) -> Tuple[Bus, str]:
    """One ALU channel: op-multiplexed ADD / AND / OR / XOR.

    ``op_onehot`` supplies four one-hot select lines.  Returns the
    result bus (width n+1; logic results are zero-extended into the
    carry position) and the carry-out signal of the adder.
    """
    if len(a) != len(x):
        raise ValueError("operand widths differ")
    if len(op_onehot) != 4:
        raise ValueError("alu_slice needs 4 one-hot op lines")
    n = len(a)
    sel_add, sel_and, sel_or, sel_xor = op_onehot
    if adder == "cla":
        add = carry_lookahead_adder(b, a, x)
    else:
        add = ripple_carry_adder(b, a, x)
    sum_bits, cout = list(add)[:n], add[n]
    res: List[str] = []
    for i in range(n):
        t_add = b.AND(sel_add, sum_bits[i])
        t_and = b.AND(sel_and, b.AND(a[i], x[i]))
        t_or = b.AND(sel_or, b.OR(a[i], x[i]))
        t_xor = b.AND(sel_xor, b.XOR(a[i], x[i]))
        res.append(b.OR(t_add, t_and, t_or, t_xor))
    res.append(b.AND(sel_add, cout))
    return Bus(res), cout


def build_alu(
    bits: int = 8,
    name: Optional[str] = None,
    adder: str = "cla",
    with_flags: bool = True,
):
    """A complete weighted ALU circuit with control outputs.

    Primary inputs: two ``bits``-wide operands and a 2-bit opcode.
    Data outputs: the (bits+1)-wide result with power-of-two weights.
    Control outputs (``with_flags``): zero flag, result parity, and the
    decoded-op validity line -- giving the circuit the datapath/control
    split the paper's fault filtering keys on.
    """
    b = CircuitBuilder(name or f"alu{bits}")
    a = b.input_bus("a", bits)
    x = b.input_bus("b", bits)
    op = b.input_bus("op", 2)
    onehot = b.decoder(op)
    res, _cout = alu_slice(b, a, x, onehot, adder=adder)
    b.output_bus(res)
    if with_flags:
        zero = b.NOR(*res)
        b.output(zero, weight=1, is_data=False)
        b.output(b.parity(list(res)), weight=1, is_data=False)
        b.output(b.OR(*onehot), weight=1, is_data=False)
    return b.build()
