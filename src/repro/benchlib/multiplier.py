"""Array multiplier and constant-coefficient (shift-add) multipliers.

The DCT hardware model multiplies pixel inputs by fixed cosine
coefficients; in real direct-2D-DCT implementations these are
constant-coefficient shift-add networks, which
:func:`constant_multiplier` reproduces.  The general
:func:`array_multiplier` (carry-save partial-product array with a
final ripple adder) feeds the ALU-style benchmark circuits.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..circuit import Bus, CircuitBuilder
from .adders import carry_save_row, ripple_carry_adder

__all__ = ["array_multiplier", "constant_multiplier", "build_multiplier_circuit"]


def array_multiplier(
    b: CircuitBuilder, a: Sequence[str], x: Sequence[str]
) -> Bus:
    """Unsigned array multiplier; returns the (len(a)+len(x))-bit product.

    Partial products are ANDed, compressed with carry-save rows and
    finished with a ripple-carry adder -- the classic array structure.
    """
    n, m = len(a), len(x)
    width = n + m
    zero = b.const(0)
    rows: List[List[str]] = []
    for j in range(m):
        row = [zero] * j + [b.AND(ai, x[j]) for ai in a] + [zero] * (width - j - n)
        rows.append(row)
    while len(rows) > 2:
        nxt: List[List[str]] = []
        for i in range(0, len(rows) - 2, 3):
            s, c = carry_save_row(b, rows[i], rows[i + 1], rows[i + 2])
            nxt.append(list(s))
            nxt.append([zero] + list(c)[:-1])  # carries shift left one bit
        rest = len(rows) % 3
        if rest:
            nxt.extend(rows[-rest:])
        rows = nxt
    if len(rows) == 1:
        return Bus(rows[0])
    total = ripple_carry_adder(b, rows[0], rows[1])
    return Bus(list(total)[:width])


def constant_multiplier(
    b: CircuitBuilder, a: Sequence[str], coefficient: int, width: Optional[int] = None
) -> Bus:
    """Multiply a bus by a non-negative constant with shift-add logic.

    Each set bit of ``coefficient`` contributes ``a << k``; the shifted
    copies are summed with ripple-carry adders.  ``width`` truncates or
    zero-extends the result (default: exact product width).
    """
    if coefficient < 0:
        raise ValueError("coefficient must be non-negative")
    n = len(a)
    exact = n + max(coefficient.bit_length(), 1)
    width = width or exact
    zero = b.const(0)

    def shifted(k: int) -> List[str]:
        out = [zero] * k + list(a)
        out = out[:width]
        return out + [zero] * (width - len(out))

    terms: List[List[str]] = [
        shifted(k) for k in range(coefficient.bit_length()) if (coefficient >> k) & 1
    ]
    if not terms:
        return Bus([zero] * width)
    acc = terms[0]
    for t in terms[1:]:
        acc = list(ripple_carry_adder(b, acc, t))[:width]
        acc += [zero] * (width - len(acc))
    return Bus(acc[:width])


def build_multiplier_circuit(bits: int = 4, name: Optional[str] = None):
    """A standalone weighted array-multiplier circuit."""
    b = CircuitBuilder(name or f"mult{bits}x{bits}")
    a = b.input_bus("a", bits)
    x = b.input_bus("b", bits)
    prod = array_multiplier(b, a, x)
    b.output_bus(prod)
    return b.build()
