"""Adder generators: ripple-carry, carry-lookahead, carry-save stages.

These are the datapath building blocks for the ISCAS85-like benchmark
circuits and for the DCT hardware model (whose final stage is a row of
27-bit adders, Section II of the paper).  All generators work on an
existing :class:`~repro.circuit.builder.CircuitBuilder` so they can be
composed into larger designs, and each returns the output bus (sum bits
LSB-first plus carry-out).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..circuit import Bus, CircuitBuilder, GateType

__all__ = [
    "full_adder",
    "ripple_carry_adder",
    "carry_lookahead_adder",
    "carry_save_row",
    "build_adder_circuit",
]


def full_adder(
    b: CircuitBuilder, a: str, x: str, cin: Optional[str] = None
) -> Tuple[str, str]:
    """One full (or half) adder; returns (sum, carry_out)."""
    if cin is None:
        return b.XOR(a, x), b.AND(a, x)
    p = b.XOR(a, x)
    s = b.XOR(p, cin)
    carry = b.OR(b.AND(a, x), b.AND(p, cin))
    return s, carry


def ripple_carry_adder(
    b: CircuitBuilder,
    a: Sequence[str],
    x: Sequence[str],
    cin: Optional[str] = None,
) -> Bus:
    """n-bit ripple-carry adder; returns sum bits then carry-out."""
    if len(a) != len(x):
        raise ValueError("operand widths differ")
    carry = cin
    sums: List[str] = []
    for ai, xi in zip(a, x):
        s, carry = full_adder(b, ai, xi, carry)
        sums.append(s)
    sums.append(carry)
    return Bus(sums)


def carry_lookahead_adder(
    b: CircuitBuilder,
    a: Sequence[str],
    x: Sequence[str],
    cin: Optional[str] = None,
    group: int = 4,
) -> Bus:
    """n-bit adder with group carry-lookahead; returns sum bits + cout.

    Generate/propagate terms are computed per bit, carries inside each
    ``group``-bit block come from the expanded lookahead expression,
    and blocks are rippled.  Larger and faster than ripple-carry, which
    makes it a better stand-in for the synthesized adders in ISCAS85
    cores.
    """
    if len(a) != len(x):
        raise ValueError("operand widths differ")
    n = len(a)
    g = [b.AND(ai, xi) for ai, xi in zip(a, x)]
    p = [b.XOR(ai, xi) for ai, xi in zip(a, x)]
    carries: List[Optional[str]] = [cin]
    for blk in range(0, n, group):
        hi = min(blk + group, n)
        for i in range(blk, hi):
            # c_{i+1} = g_i + p_i g_{i-1} + ... + p_i..p_blk c_blk
            terms: List[str] = [g[i]]
            for j in range(i - 1, blk - 1, -1):
                factors = [p[k] for k in range(j + 1, i + 1)] + [g[j]]
                terms.append(b.AND(*factors) if len(factors) > 1 else factors[0])
            c_in_blk = carries[blk]
            if c_in_blk is not None:
                factors = [p[k] for k in range(blk, i + 1)] + [c_in_blk]
                terms.append(b.AND(*factors))
            carries.append(b.OR(*terms) if len(terms) > 1 else terms[0])
    sums: List[str] = []
    for i in range(n):
        if carries[i] is None:
            sums.append(p[i])
        else:
            sums.append(b.XOR(p[i], carries[i]))
    sums.append(carries[n])
    return Bus(sums)


def carry_save_row(
    b: CircuitBuilder,
    a: Sequence[str],
    x: Sequence[str],
    y: Sequence[str],
) -> Tuple[Bus, Bus]:
    """3:2 carry-save compressor row; returns (sum bus, carry bus).

    The carry bus is *unshifted*; callers shift it one position left
    when feeding the next stage, as usual for CSA trees (used by the
    array multiplier and the DCT accumulation tree).
    """
    if not (len(a) == len(x) == len(y)):
        raise ValueError("operand widths differ")
    sums: List[str] = []
    carries: List[str] = []
    for ai, xi, yi in zip(a, x, y):
        p = b.XOR(ai, xi)
        sums.append(b.XOR(p, yi))
        carries.append(b.OR(b.AND(ai, xi), b.AND(p, yi)))
    return Bus(sums), Bus(carries)


def build_adder_circuit(
    bits: int = 8,
    kind: str = "ripple",
    name: Optional[str] = None,
    control_parity: bool = False,
):
    """A standalone weighted adder circuit (for examples and tests).

    Outputs are the n sum bits (weights 1, 2, 4, ...) and the carry-out
    (weight 2**n), all data outputs.  With ``control_parity`` a parity
    control output over the operands is added, giving the circuit a
    non-trivial datapath/control split.  Returns a
    :class:`~repro.circuit.netlist.Circuit`.
    """
    b = CircuitBuilder(name or f"{kind}_adder{bits}")
    a = b.input_bus("a", bits)
    x = b.input_bus("b", bits)
    if kind == "ripple":
        out = ripple_carry_adder(b, a, x)
    elif kind == "cla":
        out = carry_lookahead_adder(b, a, x)
    else:
        raise ValueError(f"unknown adder kind {kind!r}")
    b.output_bus(out)
    if control_parity:
        b.output(b.parity(list(a) + list(x)), weight=1, is_data=False)
    return b.build()
