"""Hamming SEC/DED error-correcting logic (the c1908-like core).

c1908 is a 16-bit single-error-correcting / double-error-detecting
(SEC/DED) unit per the ISCAS85 reverse engineering.  The generator
builds the full combinational pipeline: syndrome computation from the
received codeword, single-bit correction via a syndrome decoder, and
error flags -- producing a circuit whose *data* outputs (the corrected
word) are a small slice of the overall logic, mirroring the low
"% datafaults" the paper reports for c1908.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..circuit import Bus, CircuitBuilder

__all__ = ["hamming_positions", "build_ecc_corrector"]


def hamming_positions(data_bits: int) -> Tuple[List[int], int]:
    """Code layout for a Hamming code over ``data_bits`` data bits.

    Returns (data positions in the codeword, number of parity bits).
    Positions are 1-based; powers of two hold parity bits, the rest
    hold data bits in order.
    """
    parity = 0
    while (1 << parity) < data_bits + parity + 1:
        parity += 1
    positions: List[int] = []
    pos = 1
    while len(positions) < data_bits:
        if pos & (pos - 1):  # not a power of two
            positions.append(pos)
        pos += 1
    return positions, parity


def build_ecc_corrector(
    data_bits: int = 16,
    name: Optional[str] = None,
    dedup_parity: bool = True,
):
    """SEC/DED corrector over a received Hamming codeword.

    Primary inputs: the received codeword (data + parity interleaved in
    Hamming positions) plus an overall-parity bit.
    Data outputs: the corrected data word, power-of-two weights.
    Control outputs: the syndrome bits, a single-error flag and a
    double-error flag.
    """
    data_pos, parity = hamming_positions(data_bits)
    total = data_bits + parity  # codeword without overall parity
    b = CircuitBuilder(name or f"secded{data_bits}")
    code = b.input_bus("r", total)  # received codeword, position i -> code[i] (1-based pos i+1)
    overall = b.input("rp")  # received overall parity

    def at(pos: int) -> str:
        return code[pos - 1]

    # Syndrome: bit k = XOR of all positions with bit k set, including
    # the parity position itself.
    syndrome: List[str] = []
    for k in range(parity):
        members = [at(p) for p in range(1, total + 1) if p & (1 << k)]
        syndrome.append(b.parity(members))

    # Overall parity check covers every codeword bit plus the overall bit.
    all_parity = b.parity(list(code) + [overall])

    # Decode the syndrome to one-hot correction lines for data positions.
    corrected: List[str] = []
    for p in data_pos:
        hit = b.equal_const(syndrome, p)
        flip = b.AND(hit, all_parity) if dedup_parity else hit
        corrected.append(b.XOR(at(p), flip))

    syndrome_nonzero = b.OR(*syndrome)
    single_error = b.AND(syndrome_nonzero, all_parity)
    double_error = b.AND(syndrome_nonzero, b.NOT(all_parity))

    b.output_bus(Bus(corrected))
    for k, s in enumerate(syndrome):
        b.output(s, weight=1, is_data=False)
    b.output(single_error, weight=1, is_data=False)
    b.output(double_error, weight=1, is_data=False)
    return b.build()
