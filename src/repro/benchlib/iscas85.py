"""ISCAS85-like benchmark circuits (the Table II evaluation suite).

The paper evaluates on the five largest ISCAS85 benchmarks.  The
original netlists are not redistributable here, so these generators
build *functional equivalents* from the Hansen-Yalcin-Hayes high-level
models (ref [17] of the paper):

========  =============================================  ===========
circuit   high-level model                                paper stats
========  =============================================  ===========
c880      8-bit ALU (add/sub/logic + control)            area 901,  37.5 % datafaults
c1908     16-bit SEC/DED error-correcting unit           area 1723, 14.3 % datafaults
c3540     8-bit BCD ALU, control-dominated               area 3752, 0.84 % datafaults
c5315     9-bit ALU, two data channels with parity       area 5631, 19.6 % datafaults
c7552     32-bit adder/comparator with parity checking   area 7164, 11.4 % datafaults
========  =============================================  ===========

The generators reproduce the *profile* that drives the experiment --
arithmetic data outputs with exponential weights, a realistic
datapath/control line split, comparable total area -- rather than the
literal gate list.  Control outputs are always computed from circuit
*inputs* (parities, comparisons, opcode decodes) except where the
reverse-engineered model derives flags from results (c3540), which is
exactly what collapses its datapath-only fraction below 1 %.

Real ISCAS85 ``.bench`` files, when available, load through
:func:`repro.circuit.bench.load_bench` and run through the same
harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuit import Bus, Circuit, CircuitBuilder, GateType
from .adders import carry_lookahead_adder, ripple_carry_adder
from .comparator import magnitude_comparator
from .control import control_pla
from .ecc import hamming_positions

__all__ = [
    "c880_like",
    "c1908_like",
    "c3540_like",
    "c5315_like",
    "c7552_like",
    "BenchmarkProfile",
    "ISCAS85_SUITE",
]


def _alu_channel(
    b: CircuitBuilder,
    a: Sequence[str],
    x: Sequence[str],
    onehot: Sequence[str],
    prefix: str,
) -> Bus:
    """Add/sub/and/or/xor/nand channel muxed by six one-hot lines."""
    n = len(a)
    sel_add, sel_sub, sel_and, sel_or, sel_xor, sel_nand = onehot[:6]
    # subtract via b-complement + carry-in
    xb = [b.mux2(sel_sub, xi, b.NOT(xi)) for xi in x]
    add = carry_lookahead_adder(b, a, xb, cin=sel_sub)
    sum_bits, cout = list(add)[:n], add[n]
    arith = b.OR(sel_add, sel_sub)
    res: List[str] = []
    for i in range(n):
        t_arith = b.AND(arith, sum_bits[i])
        t_and = b.AND(sel_and, b.AND(a[i], x[i]))
        t_or = b.AND(sel_or, b.OR(a[i], x[i]))
        t_xor = b.AND(sel_xor, b.XOR(a[i], x[i]))
        t_nand = b.AND(sel_nand, b.NAND(a[i], x[i]))
        res.append(b.OR(t_arith, t_and, t_or, t_xor, t_nand, name=b.fresh(prefix)))
    res.append(b.AND(arith, cout, name=b.fresh(prefix)))
    return Bus(res)


def c880_like(name: str = "c880_like") -> Circuit:
    """8-bit ALU: add/sub/logic channel, input-derived control flags.

    Data outputs: 9-bit result (weights 1..256).  Control outputs:
    operand parities, magnitude-comparison flags, opcode validity.
    """
    b = CircuitBuilder(name)
    a = b.input_bus("a", 8)
    x = b.input_bus("b", 8)
    op = b.input_bus("op", 3)
    onehot = b.decoder(op)
    res = _alu_channel(b, a, x, list(onehot[:6]), prefix="res")
    # result output-gating stage (datapath-only)
    out_en = b.OR(*onehot[:6], name="res_enable")
    gated = Bus(b.AND(r, out_en, name=b.fresh("rg")) for r in res)
    b.output_bus(gated)
    # input-derived control block
    b.output(b.parity(list(a)), weight=1, is_data=False)
    b.output(b.parity(list(x)), weight=1, is_data=False)
    gt, eq, lt = magnitude_comparator(b, a, x)
    b.output(gt, weight=1, is_data=False)
    b.output(eq, weight=1, is_data=False)
    b.output(lt, weight=1, is_data=False)
    b.output(b.OR(*onehot[:6]), weight=1, is_data=False)
    # control decode matrix
    for o in control_pla(b, list(x) + list(op), terms=32, outputs=6, seed=880):
        b.output(o, weight=1, is_data=False)
    return b.build()


def c1908_like(name: str = "c1908_like") -> Circuit:
    """16-bit SEC/DED unit: correct a received codeword and re-check it.

    Data outputs: the corrected 16-bit word.  Control outputs: the
    syndrome, error flags, and the recomputed check bits of the
    corrected word (the re-encode stage that makes the real c1908 as
    large as it is).
    """
    data_bits = 16
    data_pos, parity = hamming_positions(data_bits)
    total = data_bits + parity
    b = CircuitBuilder(name)
    code = b.input_bus("r", total)
    overall = b.input("rp")

    def at(pos: int) -> str:
        return code[pos - 1]

    def correction_path(tag: str) -> Tuple[List[str], List[str], str]:
        """Syndrome + corrected word; duplicated for the checker side."""
        syn = [
            b.parity([at(p) for p in range(1, total + 1) if p & (1 << k)])
            for k in range(parity)
        ]
        allp = b.parity(list(code) + [overall])
        corr: List[str] = []
        for p in data_pos:
            hit = b.equal_const(syn, p)
            flip = b.AND(hit, allp)
            corr.append(b.XOR(at(p), flip, name=b.fresh(f"{tag}_c")))
        return syn, corr, allp

    # Functional path: the corrected data word (the only data outputs).
    _syn_f, corrected, _allp_f = correction_path("fn")
    b.output_bus(Bus(corrected))

    # Independent checker path: recomputes everything and publishes the
    # syndrome, error flags, and a re-encode comparison (all control).
    syndrome, shadow, all_parity = correction_path("ck")
    syndrome_nonzero = b.OR(*syndrome)
    b.output(b.AND(syndrome_nonzero, all_parity), weight=1, is_data=False)  # single err
    b.output(b.AND(syndrome_nonzero, b.NOT(all_parity)), weight=1, is_data=False)  # double
    for s in syndrome:
        b.output(s, weight=1, is_data=False)
    # Re-encode the shadow-corrected word and compare check bits.
    corrected_parity = []
    for k in range(parity):
        members = [shadow[i] for i, p in enumerate(data_pos) if p & (1 << k)]
        chk = b.parity(members)
        corrected_parity.append(b.XOR(chk, at(1 << k)))
    b.output(b.OR(*corrected_parity), weight=1, is_data=False)
    for k, cp in enumerate(corrected_parity):
        b.output(b.AND(cp, b.NOT(syndrome[k])), weight=1, is_data=False)
    # Encoder-side channel: check bits for an outgoing data word.
    dout = b.input_bus("d", data_bits)
    for k in range(parity):
        members = [dout[i] for i, p in enumerate(data_pos) if p & (1 << k)]
        b.output(b.parity(members), weight=1, is_data=False)
    # Bus-control matrix.
    for o in control_pla(b, list(code) + list(dout), terms=110, outputs=8, seed=1908):
        b.output(o, weight=1, is_data=False)
    return b.build()


def _bcd_adjust(b: CircuitBuilder, bits: Sequence[str], carry: str) -> Bus:
    """Decimal-adjust a 5-bit binary sum nibble (add 6 when > 9)."""
    gt9 = b.OR(
        b.AND(bits[3], bits[2]),
        b.AND(bits[3], bits[1]),
        carry,
    )
    six = [b.const(0), gt9, gt9, b.const(0)]
    adjusted = ripple_carry_adder(b, list(bits[:4]), six)
    return Bus(list(adjusted[:4]) + [b.OR(carry, adjusted[4])])


def c3540_like(name: str = "c3540_like") -> Circuit:
    """8-bit BCD/binary ALU, control-dominated (sub-1 % datafaults).

    Flags (zero, sign, parity, nibble carries) are derived from the
    *result*, which pulls the whole datapath into the shared region --
    only the final output stage remains datapath-only, mirroring the
    paper's 0.84 % figure.  A large control block (opcode decode,
    mode/condition logic over the flags and inputs) dominates the area.
    """
    b = CircuitBuilder(name)
    a = b.input_bus("a", 8)
    x = b.input_bus("b", 8)
    op = b.input_bus("op", 3)
    mode = b.input("mode")  # binary / BCD
    cond = b.input_bus("cond", 4)
    onehot = b.decoder(op)
    res = _alu_channel(b, a, x, list(onehot[:6]), prefix="pre")

    # BCD adjust per nibble (datapath, but feeds flags too)
    lo = _bcd_adjust(b, list(res[:4]), b.const(0))
    hi = _bcd_adjust(b, list(res[4:8]), lo[4])
    bcd = list(lo[:4]) + list(hi[:4]) + [hi[4]]
    final = [b.mux2(mode, r, c) for r, c in zip(list(res[:9]), bcd)]

    # Output stage: one enable gate per bit that feeds only the PO.
    # The enable line is a tautology (mode OR NOT mode), so these are
    # the classically-redundant, datapath-only lines that give c3540
    # its tiny-but-nonzero simplification headroom.
    enable = b.OR(mode, b.NOT(mode), name="out_enable")
    out_stage = [b.AND(f, enable, name=b.fresh("out")) for f in final]
    b.output_bus(Bus(out_stage))

    # Result-derived flags -> everything upstream becomes shared.
    zero = b.NOR(*final)
    sign = final[7]
    par = b.parity(final)
    b.output(zero, weight=1, is_data=False)
    b.output(sign, weight=1, is_data=False)
    b.output(par, weight=1, is_data=False)
    b.output(lo[4], weight=1, is_data=False)
    b.output(hi[4], weight=1, is_data=False)

    # Large pure-control block: condition-code evaluation network.
    conds = b.decoder(cond)
    flags = [zero, sign, par, lo[4], hi[4], b.parity(list(a)), b.parity(list(x))]
    cc_terms: List[str] = []
    for i, c in enumerate(conds):
        f = flags[i % len(flags)]
        g = flags[(i * 3 + 1) % len(flags)]
        cc_terms.append(b.AND(c, b.XOR(f, g)))
    b.output(b.OR(*cc_terms), weight=1, is_data=False)
    # Opcode-legality and interrupt-style control matrix.
    for k in range(8):
        row = b.AND(onehot[k], b.XOR(cond[k % 4], mode))
        b.output(b.OR(row, b.AND(conds[(k * 2 + 1) % 16], flags[k % len(flags)])),
                 weight=1, is_data=False)
    # Microcode-style decode PLA over flags, conditions and operands --
    # the control bulk that dominates the real c3540.
    pla_in = list(a) + list(x) + list(cond) + [mode] + list(op) + flags
    for o in control_pla(b, pla_in, terms=560, outputs=12, seed=3540):
        b.output(o, weight=1, is_data=False)
    return b.build()


def c5315_like(name: str = "c5315_like") -> Circuit:
    """9-bit ALU computing two arithmetic channels with parity logic.

    Two independently-muxed 9-bit channels (as in the reverse-
    engineered c5315), each with its own data output bus; control
    outputs are input parities, comparator flags and channel-select
    decodes.
    """
    b = CircuitBuilder(name)
    a = b.input_bus("a", 9)
    x = b.input_bus("b", 9)
    y = b.input_bus("c", 9)
    op1 = b.input_bus("op1", 3)
    op2 = b.input_bus("op2", 3)
    one1 = b.decoder(op1)
    one2 = b.decoder(op2)
    ch1 = _alu_channel(b, a, x, list(one1[:6]), prefix="ch1")
    ch2 = _alu_channel(b, x, y, list(one2[:6]), prefix="ch2")
    # third channel: sum of the other two channels' operands
    ch3 = Bus(
        list(
            carry_lookahead_adder(b, a, y)
        )
    )
    b.output_bus(ch1)
    b.output_bus(ch2)
    b.output_bus(ch3)
    for bus in (a, x, y):
        b.output(b.parity(list(bus)), weight=1, is_data=False)
    gt, eq, lt = magnitude_comparator(b, a, y)
    b.output(gt, weight=1, is_data=False)
    b.output(eq, weight=1, is_data=False)
    b.output(lt, weight=1, is_data=False)
    b.output(b.OR(*one1[:6]), weight=1, is_data=False)
    b.output(b.OR(*one2[:6]), weight=1, is_data=False)
    # Bus-steering and interrupt control matrix.
    pla_in = list(a) + list(x) + list(y) + list(op1) + list(op2)
    for o in control_pla(b, pla_in, terms=620, outputs=14, seed=5315):
        b.output(o, weight=1, is_data=False)
    return b.build()


def c7552_like(name: str = "c7552_like") -> Circuit:
    """32-bit adder/comparator with parity checking.

    Data outputs: the 33-bit sum (top weight 2**32 -- the reason the
    paper sweeps %RS in the 1e-7 range for c7552).  Control outputs:
    comparison flags, per-byte input parity checks against transmitted
    parity bits, and a masked-operand comparator stage.
    """
    b = CircuitBuilder(name)
    a = b.input_bus("a", 32)
    x = b.input_bus("b", 32)
    pa = b.input_bus("pa", 4)  # transmitted parity per byte of a
    px = b.input_bus("pb", 4)
    mask = b.input_bus("m", 8)

    # operand-gating stage in front of the functional adder (datapath).
    # The enable is a tautology, so these gates are classically
    # redundant -- the real c7552 is well known to contain substantial
    # redundant logic (~131 redundant faults), and this stage plus the
    # output-gating layer below model that property.
    gate_en = b.OR(mask[0], b.NOT(mask[0]), name="op_gate_en")
    ag = [b.AND(ai, gate_en, name=b.fresh("ag")) for ai in a]
    xg = [b.AND(xi, gate_en, name=b.fresh("xg")) for xi in x]
    total = carry_lookahead_adder(b, ag, xg)
    # redundant output-gating layer (bus-disable that is never asserted)
    bus_dis = b.AND(mask[1], b.NOT(mask[1]), name="bus_disable")
    ndis = b.NOT(bus_dis, name="bus_disable_n")
    gated_total = Bus(b.AND(t, ndis, name=b.fresh("tg")) for t in total)
    b.output_bus(gated_total)

    gt, eq, lt = magnitude_comparator(b, a, x)
    b.output(gt, weight=1, is_data=False)
    b.output(eq, weight=1, is_data=False)
    b.output(lt, weight=1, is_data=False)
    for k in range(4):
        chk_a = b.parity(list(a[8 * k : 8 * k + 8]) + [pa[k]])
        chk_x = b.parity(list(x[8 * k : 8 * k + 8]) + [px[k]])
        b.output(chk_a, weight=1, is_data=False)
        b.output(chk_x, weight=1, is_data=False)
    # masked comparator stage (control): compare masked low bytes
    ma = [b.AND(a[i], mask[i]) for i in range(8)]
    mx = [b.AND(x[i], mask[i]) for i in range(8)]
    mgt, meq, mlt = magnitude_comparator(b, ma, mx)
    b.output(mgt, weight=1, is_data=False)
    b.output(meq, weight=1, is_data=False)
    b.output(mlt, weight=1, is_data=False)
    # Checker adder: an independent 32-bit addition whose sum parity is
    # compared against a carry-based parity prediction (all control;
    # the functional sum above stays datapath-only).
    shadow = carry_lookahead_adder(b, a, x)
    shadow_parity = b.parity(list(shadow))
    operand_parity = b.parity(list(a) + list(x))
    b.output(b.XOR(shadow_parity, operand_parity), weight=1, is_data=False)
    for k in range(4):
        b.output(
            b.parity(list(shadow[8 * k : 8 * k + 8])), weight=1, is_data=False
        )
    # Bus-protocol control matrix.
    pla_in = list(a) + list(x) + list(mask) + list(pa) + list(px)
    for o in control_pla(b, pla_in, terms=700, outputs=16, seed=7552):
        b.output(o, weight=1, is_data=False)
    return b.build()


@dataclass(frozen=True)
class BenchmarkProfile:
    """One Table II benchmark: builder, paper reference data."""

    key: str
    builder: Callable[[], Circuit]
    paper_area: int
    paper_datafault_pct: float
    rs_pct_sweep: Tuple[float, ...]
    paper_area_reduction_pct: Tuple[float, ...]


#: The Table II suite with the paper's published numbers.
ISCAS85_SUITE: Dict[str, BenchmarkProfile] = {
    "c880": BenchmarkProfile(
        "c880", c880_like, 901, 37.5, (1, 2, 5, 10), (5.88, 11.32, 20.75, 22.53)
    ),
    "c1908": BenchmarkProfile(
        "c1908", c1908_like, 1723, 14.3, (0.1, 0.2, 0.5, 1), (1.86, 2.79, 5.57, 12.00)
    ),
    "c3540": BenchmarkProfile(
        "c3540", c3540_like, 3752, 0.84, (1, 2, 5, 10), (0.11, 0.21, 0.21, 0.43)
    ),
    "c5315": BenchmarkProfile(
        "c5315", c5315_like, 5631, 19.6, (1, 2, 5, 10), (1.97, 3.29, 5.03, 8.72)
    ),
    "c7552": BenchmarkProfile(
        "c7552",
        c7552_like,
        7164,
        11.4,
        (1e-7, 2e-7, 5e-7, 10e-7),
        (5.97, 5.97, 5.97, 6.30),
    ),
}
