"""Deterministic control-logic generator (PLA-style).

The ISCAS85 circuits embed their arithmetic cores in large blobs of
random-looking control logic (opcode decode, condition matrices,
interrupt logic).  :func:`control_pla` synthesizes such a blob:
``terms`` AND-terms over a literal pool drawn deterministically from
the given input signals, OR-folded into ``outputs`` control outputs.
A linear-congruential sequence (not :mod:`random`) keeps the structure
reproducible across runs and platforms.
"""

from __future__ import annotations

from typing import List, Sequence

from ..circuit import CircuitBuilder

__all__ = ["control_pla"]


def control_pla(
    b: CircuitBuilder,
    inputs: Sequence[str],
    terms: int,
    outputs: int,
    term_width: int = 4,
    seed: int = 1,
    prefix: str = "ctl",
) -> List[str]:
    """Build a PLA-like control block; returns the output signals.

    Each AND-term picks ``term_width`` literals (signals or their
    negations) from ``inputs``; terms are distributed round-robin into
    ``outputs`` OR-planes.  The caller declares the returned signals as
    control outputs.
    """
    if not inputs:
        raise ValueError("control_pla needs at least one input signal")
    state = seed & 0x7FFFFFFF or 1

    def nxt(bound: int) -> int:
        nonlocal state
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        return state % bound

    inverted = {s: b.NOT(s, name=b.fresh(f"{prefix}_n")) for s in set(inputs)}
    planes: List[List[str]] = [[] for _ in range(outputs)]
    for t in range(terms):
        lits: List[str] = []
        for _ in range(term_width):
            s = inputs[nxt(len(inputs))]
            lits.append(inverted[s] if nxt(2) else s)
        term = b.AND(*lits, name=b.fresh(f"{prefix}_t"))
        planes[t % outputs].append(term)
    outs: List[str] = []
    for k, plane in enumerate(planes):
        if not plane:
            plane = [inputs[k % len(inputs)]]
        outs.append(
            b.OR(*plane, name=b.fresh(f"{prefix}_o")) if len(plane) > 1 else plane[0]
        )
    return outs
