"""Benchmark circuit generators: arithmetic blocks and the ISCAS85-like
Table II evaluation suite."""

from .adders import (
    build_adder_circuit,
    carry_lookahead_adder,
    carry_save_row,
    full_adder,
    ripple_carry_adder,
)
from .multiplier import array_multiplier, build_multiplier_circuit, constant_multiplier
from .alu import alu_slice, build_alu
from .ecc import build_ecc_corrector, hamming_positions
from .comparator import build_adder_comparator, magnitude_comparator
from .control import control_pla
from .random_logic import random_circuit
from .iscas85 import (
    ISCAS85_SUITE,
    BenchmarkProfile,
    c880_like,
    c1908_like,
    c3540_like,
    c5315_like,
    c7552_like,
)

__all__ = [
    "full_adder",
    "ripple_carry_adder",
    "carry_lookahead_adder",
    "carry_save_row",
    "build_adder_circuit",
    "array_multiplier",
    "constant_multiplier",
    "build_multiplier_circuit",
    "alu_slice",
    "build_alu",
    "build_ecc_corrector",
    "hamming_positions",
    "magnitude_comparator",
    "build_adder_comparator",
    "control_pla",
    "random_circuit",
    "ISCAS85_SUITE",
    "BenchmarkProfile",
    "c880_like",
    "c1908_like",
    "c3540_like",
    "c5315_like",
    "c7552_like",
]
