"""Random combinational circuit generation.

Used by the property-based tests (engine-vs-injection equivalence,
lemma checking, PODEM-vs-exhaustive agreement) and by the fuzzing
benches.  Circuits are generated gate-by-gate with inputs drawn from
already-defined signals, so they are acyclic by construction; every
sink signal is promoted to a primary output so no logic is trivially
dead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..circuit import Circuit, CircuitBuilder, GateType

__all__ = ["random_circuit"]

_DEFAULT_TYPES = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
)


def random_circuit(
    num_inputs: int = 6,
    num_gates: int = 20,
    rng: Optional[np.random.Generator] = None,
    max_fanin: int = 3,
    gate_types: Sequence[GateType] = _DEFAULT_TYPES,
    num_outputs: Optional[int] = None,
    weighted_outputs: bool = True,
    name: str = "random",
) -> Circuit:
    """Generate a random connected combinational circuit.

    Parameters
    ----------
    num_inputs, num_gates:
        Circuit size.
    max_fanin:
        Upper bound on gate fanin (NOT gates always take one input).
    num_outputs:
        Number of primary outputs.  Defaults to all sink signals plus a
        couple of random internal signals; when given, that many
        distinct signals are chosen (sinks first).
    weighted_outputs:
        Assign power-of-two weights in output order (True) or weight 1
        everywhere (False).
    """
    rng = rng or np.random.default_rng()
    b = CircuitBuilder(name)
    signals: List[str] = [b.input(f"i{k}") for k in range(num_inputs)]
    for k in range(num_gates):
        gt = gate_types[int(rng.integers(0, len(gate_types)))]
        if gt in (GateType.NOT, GateType.BUF):
            fanin = 1
        else:
            fanin = int(rng.integers(2, max_fanin + 1))
        ins = [signals[int(rng.integers(0, len(signals)))] for _ in range(fanin)]
        signals.append(b.gate(gt, ins, name=f"g{k}"))

    circuit = b.circuit
    used = {src for g in circuit.gates.values() for src in g.inputs}
    sinks = [s for s in signals[num_inputs:] if s not in used]
    if num_outputs is None:
        outputs = list(sinks)
        extra = [s for s in signals[num_inputs:] if s not in set(outputs)]
        rng.shuffle(extra)
        outputs.extend(extra[:2])
    else:
        pool = sinks + [s for s in reversed(signals[num_inputs:]) if s not in set(sinks)]
        outputs = pool[:num_outputs]
    if not outputs:
        outputs = [signals[-1]]
    for i, o in enumerate(outputs):
        b.output(o, weight=(1 << i) if weighted_outputs else 1)
    return b.build()
