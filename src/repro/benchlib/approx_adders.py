"""Hand-designed approximate adder baselines.

The paper's related work (its refs [7][8]) re-designs datapath modules
by hand; the most common published baselines are reproduced here so the
benchmarks can compare the ATPG-driven method against them on equal
RS footing:

* **Truncated adder (TruA)** -- the k low result bits are tied to
  constant 0 and their logic removed.  This is exactly the design the
  paper's Section II budget analysis reasons about ("each adder can
  tolerate elimination of up to 9 LSBs").
* **Lower-OR adder (LOA)** -- the k low result bits are computed as
  ``a_i OR b_i`` with no carry chain (Mahdiani et al.'s classic
  approximate architecture); only the upper part carries exactly, with
  a single AND-coupled carry-in from the highest approximate bit pair.

Both generators return circuits with the same interface as
:func:`repro.benchlib.adders.build_adder_circuit` (weighted sum bus +
carry out), so :class:`~repro.metrics.MetricsEstimator` can measure
their ER/ES/RS against the exact adder directly.
"""

from __future__ import annotations

from typing import List, Optional

from ..circuit import Bus, Circuit, CircuitBuilder
from .adders import ripple_carry_adder

__all__ = ["build_truncated_adder", "build_lower_or_adder", "build_almost_correct_adder"]


def build_truncated_adder(
    bits: int, truncate: int, name: Optional[str] = None
) -> Circuit:
    """Adder with the ``truncate`` low sum bits tied to constant 0.

    The upper ``bits - truncate`` positions add exactly (with no carry
    in from the dropped region, which is what physically remains after
    the low-order full adders are removed).
    """
    if not 0 <= truncate <= bits:
        raise ValueError(f"cannot truncate {truncate} of {bits} bits")
    b = CircuitBuilder(name or f"tru_adder{bits}_k{truncate}")
    a = b.input_bus("a", bits)
    x = b.input_bus("b", bits)
    zero = b.const(0)
    low: List[str] = [zero] * truncate
    if truncate < bits:
        upper = ripple_carry_adder(b, a[truncate:], x[truncate:])
        out = low + list(upper)
    else:
        out = low + [zero]
    b.output_bus(Bus(out))
    return b.build()


def build_almost_correct_adder(
    bits: int, window: int, name: Optional[str] = None
) -> Circuit:
    """Almost-correct adder (ACA): each sum bit uses a bounded carry
    window.

    Sum bit *i* is computed by a small ripple adder over inputs
    ``max(0, i-window+1) .. i`` only -- the speculative-carry scheme of
    Verma et al. that the paper's ref [7] delay work builds on.  Errors
    occur exactly when a real carry chain exceeds the window.
    """
    if window < 1:
        raise ValueError("window must be at least 1")
    b = CircuitBuilder(name or f"aca_adder{bits}_w{window}")
    a = b.input_bus("a", bits)
    x = b.input_bus("b", bits)
    out: List[str] = []
    for i in range(bits):
        lo = max(0, i - window + 1)
        seg = ripple_carry_adder(b, a[lo : i + 1], x[lo : i + 1])
        out.append(seg[i - lo])
        if i == bits - 1:
            carry = seg[i - lo + 1]
    out.append(carry)
    b.output_bus(Bus(out))
    return b.build()


def build_lower_or_adder(
    bits: int, approx_bits: int, name: Optional[str] = None
) -> Circuit:
    """Lower-OR adder: the low ``approx_bits`` positions compute
    ``a_i OR b_i``; the upper part adds exactly with a carry-in of
    ``a_{k-1} AND b_{k-1}`` (the LOA coupling term)."""
    if not 0 <= approx_bits <= bits:
        raise ValueError(f"cannot approximate {approx_bits} of {bits} bits")
    b = CircuitBuilder(name or f"loa_adder{bits}_k{approx_bits}")
    a = b.input_bus("a", bits)
    x = b.input_bus("b", bits)
    low = [b.OR(a[i], x[i]) for i in range(approx_bits)]
    if approx_bits < bits:
        cin = b.AND(a[approx_bits - 1], x[approx_bits - 1]) if approx_bits else None
        upper = ripple_carry_adder(b, a[approx_bits:], x[approx_bits:], cin=cin)
        out = low + list(upper)
    else:
        out = low + [b.const(0)]
    b.output_bus(Bus(out))
    return b.build()
