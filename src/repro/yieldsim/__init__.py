"""Effective-yield analysis: defect populations + acceptance testing."""

from .population import Chip, sample_population
from .acceptance import ChipVerdict, YieldReport, classify_population

__all__ = [
    "Chip",
    "sample_population",
    "ChipVerdict",
    "YieldReport",
    "classify_population",
]
