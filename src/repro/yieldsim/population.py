"""Defective-chip population modelling.

The paper's introduction motivates error tolerance through *effective
yield*: among manufactured chips, some are perfect, some are defective
but produce errors within the application threshold ("imperfect-but-
acceptable"), and some are unusable.  This module synthesizes chip
populations for that analysis: each manufactured chip is the design
with a random set of spot defects, modelled -- as in the paper's fault
universe -- as stuck-at faults on random lines.

Defect counts follow the classic Poisson spot-defect model: a chip has
``k`` defects with probability ``e^-lambda lambda^k / k!``, where
``lambda`` scales with circuit area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit
from ..faults.bridging import BridgingFault, sample_bridging_faults
from ..faults.model import StuckAtFault, enumerate_faults

__all__ = ["Chip", "sample_population"]


@dataclass(frozen=True)
class Chip:
    """One manufactured instance: the design plus its spot defects.

    Defects are stuck-at faults and/or bridging shorts.
    """

    index: int
    faults: Tuple[StuckAtFault, ...]
    bridges: Tuple[BridgingFault, ...] = ()

    @property
    def is_perfect(self) -> bool:
        return not self.faults and not self.bridges

    @property
    def num_defects(self) -> int:
        return len(self.faults) + len(self.bridges)


def sample_population(
    circuit: Circuit,
    num_chips: int,
    defect_density: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    include_branches: bool = True,
    bridging_fraction: float = 0.0,
) -> List[Chip]:
    """Sample a population of chips with Poisson-distributed defects.

    ``defect_density`` is the expected number of defects per chip
    (lambda).  Each defect is a bridging short with probability
    ``bridging_fraction`` and a stuck-at fault otherwise.  Stuck-at
    sites are drawn uniformly without repetition per chip
    (contradictory draws resolved by keeping the first); bridges are
    drawn from feasible (non-feedback) net pairs.
    """
    if num_chips <= 0:
        raise ValueError("population size must be positive")
    if defect_density < 0:
        raise ValueError("defect density must be non-negative")
    if not 0.0 <= bridging_fraction <= 1.0:
        raise ValueError("bridging_fraction must be in [0, 1]")
    rng = rng or np.random.default_rng()
    universe = enumerate_faults(circuit, include_branches=include_branches)
    chips: List[Chip] = []
    counts = rng.poisson(defect_density, size=num_chips)
    for idx in range(num_chips):
        k = int(counts[idx])
        num_bridges = (
            int(np.sum(rng.random(k) < bridging_fraction)) if bridging_fraction else 0
        )
        num_stuck = k - num_bridges
        faults: List[StuckAtFault] = []
        seen_lines = set()
        if num_stuck:
            picks = rng.choice(
                len(universe), size=min(num_stuck, len(universe)), replace=False
            )
            for p in picks:
                f = universe[int(p)]
                if f.line in seen_lines:
                    continue
                seen_lines.add(f.line)
                faults.append(f)
        bridges: Tuple[BridgingFault, ...] = ()
        if num_bridges:
            bridges = tuple(sample_bridging_faults(circuit, num_bridges, rng=rng))
        chips.append(Chip(index=idx, faults=tuple(faults), bridges=bridges))
    return chips
