"""Acceptance testing and effective-yield analysis (paper Section I).

Classical yield counts only perfect chips.  Error tolerance admits
*imperfect-but-acceptable* chips: those whose output errors stay within
the application's RS threshold.  This module classifies a chip
population with the same machinery the synthesis flow uses
(differential fault simulation for ER and observed ES, optionally the
threshold ES-ATPG for a conservative verdict) and reports both yields:

    classical yield = perfect chips / all chips
    effective yield = (perfect + acceptable chips) / all chips

The gap between the two is exactly the benefit the paper's intro
quantifies -- the fraction of manufactured parts that testing for
error tolerance rescues from the scrap bin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit import Circuit
from ..metrics.estimate import MetricsEstimator
from .population import Chip

__all__ = ["ChipVerdict", "YieldReport", "classify_population"]


@dataclass(frozen=True)
class ChipVerdict:
    """Classification of one chip."""

    chip: Chip
    rs: float
    accepted: bool

    @property
    def category(self) -> str:
        if self.chip.is_perfect:
            return "perfect"
        return "acceptable" if self.accepted else "unacceptable"


@dataclass
class YieldReport:
    """Population-level yield figures."""

    rs_threshold: float
    verdicts: List[ChipVerdict] = field(default_factory=list)

    @property
    def num_chips(self) -> int:
        return len(self.verdicts)

    @property
    def perfect(self) -> int:
        return sum(1 for v in self.verdicts if v.category == "perfect")

    @property
    def acceptable(self) -> int:
        return sum(1 for v in self.verdicts if v.category == "acceptable")

    @property
    def unacceptable(self) -> int:
        return sum(1 for v in self.verdicts if v.category == "unacceptable")

    @property
    def classical_yield(self) -> float:
        return self.perfect / self.num_chips if self.num_chips else 0.0

    @property
    def effective_yield(self) -> float:
        if not self.num_chips:
            return 0.0
        return (self.perfect + self.acceptable) / self.num_chips

    @property
    def yield_gain(self) -> float:
        """Absolute effective-over-classical yield improvement."""
        return self.effective_yield - self.classical_yield

    def __str__(self) -> str:
        return (
            f"{self.num_chips} chips @ RS<= {self.rs_threshold:g}: "
            f"classical {100 * self.classical_yield:.1f}%, "
            f"effective {100 * self.effective_yield:.1f}% "
            f"(+{100 * self.yield_gain:.1f} points; "
            f"{self.acceptable} rescued, {self.unacceptable} scrapped)"
        )


def classify_population(
    circuit: Circuit,
    chips: Sequence[Chip],
    rs_threshold: float,
    num_vectors: int = 5_000,
    seed: int = 0,
    use_atpg: bool = False,
    estimator: Optional[MetricsEstimator] = None,
) -> YieldReport:
    """Run acceptance testing over a chip population.

    Each defective chip is measured differentially against the perfect
    design on a shared vector batch; with ``use_atpg`` the accept
    decision additionally runs the conservative threshold ES-ATPG (the
    production-test configuration; slower but sound).
    """
    est = estimator or MetricsEstimator(circuit, num_vectors=num_vectors, seed=seed)
    report = YieldReport(rs_threshold=float(rs_threshold))
    for chip in chips:
        if chip.is_perfect:
            report.verdicts.append(ChipVerdict(chip=chip, rs=0.0, accepted=True))
            continue
        approx = None
        if chip.bridges:
            # bridging defects become a transformed netlist; stuck-at
            # defects ride along as simulator-level injections
            from ..faults.bridging import inject_bridging

            try:
                approx = inject_bridging(circuit, list(chip.bridges))
            except Exception:
                # infeasible short on this sample: treat as catastrophic
                report.verdicts.append(
                    ChipVerdict(chip=chip, rs=float("inf"), accepted=False)
                )
                continue
        if use_atpg:
            accepted, metrics = est.check_rs(
                rs_threshold, approx=approx, faults=list(chip.faults), use_atpg=True
            )
            rs = metrics.rs
        else:
            er, observed = est.simulate(approx=approx, faults=list(chip.faults))
            rs = er * observed
            accepted = rs <= rs_threshold
        report.verdicts.append(ChipVerdict(chip=chip, rs=rs, accepted=accepted))
    return report
